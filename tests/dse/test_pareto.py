"""Unit tests for Pareto dominance, the frontier, and its checkpoints."""

import pytest

from repro.core.strategy import OverlapMode
from repro.dse import (
    DesignPoint,
    ParetoFrontier,
    constrained_dominates,
    crowding_distances,
    dominates,
    nondominated_ranks,
)


def point(tx, ty=4, mode=OverlapMode.FULLY_CACHED, fuse=None):
    return DesignPoint("meta_proto_like_df", tx, ty, mode, fuse)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_in_one_equal_in_other(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_trade_off_does_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))


class TestNondominatedRanks:
    def test_layered_fronts(self):
        values = [(1, 3), (3, 1), (2, 2), (3, 3), (4, 4)]
        assert nondominated_ranks(values) == [0, 0, 0, 1, 2]

    def test_single_objective_is_sorted_rank(self):
        values = [(3,), (1,), (2,), (1,)]
        assert nondominated_ranks(values) == [2, 0, 1, 0]

    def test_empty(self):
        assert nondominated_ranks([]) == []


class TestCrowdingDistances:
    def test_boundaries_are_infinite(self):
        values = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]
        distances = crowding_distances(values)
        assert distances[0] == float("inf") and distances[2] == float("inf")
        assert distances[1] == pytest.approx(2.0)

    def test_constant_objective_contributes_nothing(self):
        values = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]
        distances = crowding_distances(values)
        assert distances[1] == pytest.approx(1.0)


class TestParetoFrontier:
    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            ParetoFrontier(())
        with pytest.raises(ValueError):
            ParetoFrontier(("energy", "energy"))

    def test_offer_keeps_nondominated(self):
        frontier = ParetoFrontier(("energy", "latency"))
        assert frontier.offer(point(1), (1.0, 3.0))
        assert frontier.offer(point(2), (3.0, 1.0))
        assert len(frontier) == 2

    def test_offer_rejects_dominated(self):
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1), (1.0, 1.0))
        assert not frontier.offer(point(2), (2.0, 2.0))
        assert len(frontier) == 1

    def test_offer_prunes_newly_dominated(self):
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1), (2.0, 2.0))
        frontier.offer(point(2), (3.0, 1.0))
        assert frontier.offer(point(3), (1.0, 1.0))
        assert [e.point for e in frontier.entries] == [point(3)]
        assert frontier.pruned == 2

    def test_duplicate_design_rejected(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(1), (1.0,))
        assert not frontier.offer(point(1), (1.0,))

    def test_equal_vectors_from_distinct_designs_coexist(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(1), (1.0,))
        assert frontier.offer(point(2), (1.0,))
        assert len(frontier) == 2

    def test_value_arity_checked(self):
        frontier = ParetoFrontier(("energy", "latency"))
        with pytest.raises(ValueError):
            frontier.offer(point(1), (1.0,))

    def test_entries_order_is_offer_order_independent(self):
        offers = [
            (point(1), (1.0, 3.0)),
            (point(2), (3.0, 1.0)),
            (point(3), (2.0, 2.0)),
        ]
        forward = ParetoFrontier(("energy", "latency"))
        backward = ParetoFrontier(("energy", "latency"))
        for p, v in offers:
            forward.offer(p, v)
        for p, v in reversed(offers):
            backward.offer(p, v)
        assert forward.entries == backward.entries

    def test_best_per_objective(self):
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1), (1.0, 3.0))
        frontier.offer(point(2), (3.0, 1.0))
        assert frontier.best("energy").point == point(1)
        assert frontier.best("latency").point == point(2)

    def test_best_tie_goes_to_first_offered(self):
        """Classic ``min()``-over-sweep-order semantics: on an exact
        tie, the earliest offer wins, whatever its sort order."""
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(9), (1.0,))  # later in sort order, offered first
        frontier.offer(point(1), (1.0,))
        assert frontier.best("energy").point == point(9)

    def test_best_on_empty_frontier_raises(self):
        with pytest.raises(ValueError):
            ParetoFrontier(("energy",)).best("energy")

    def test_merge(self):
        a = ParetoFrontier(("energy",))
        a.offer(point(1), (2.0,))
        b = ParetoFrontier(("energy",))
        b.offer(point(2), (1.0,))
        assert a.merge(b) == 1
        assert [e.point for e in a.entries] == [point(2)]
        with pytest.raises(ValueError):
            a.merge(ParetoFrontier(("latency",)))

    def test_save_load_round_trip(self, tmp_path):
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1, fuse=2), (1.0, 3.0))
        frontier.offer(point(2), (3.0, 1.0))
        path = tmp_path / "frontier.json"
        frontier.save(path)
        loaded = ParetoFrontier.load(path)
        assert loaded.objectives == frontier.objectives
        assert loaded.entries == frontier.entries

    def test_round_trip_preserves_best_tie_break(self, tmp_path):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(9), (1.0,))  # first offered wins ties...
        frontier.offer(point(1), (1.0,))
        path = tmp_path / "frontier.json"
        frontier.save(path)
        # ... including after a save/load round trip.
        assert ParetoFrontier.load(path).best("energy").point == point(9)

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999, "objectives": ["energy"], "entries": []}')
        with pytest.raises(ValueError, match="format"):
            ParetoFrontier.load(path)


class TestConstrainedDominance:
    def test_feasible_beats_infeasible_whatever_the_values(self):
        assert constrained_dominates((9.0, 9.0), (1.0, 1.0), 0.0, 0.5)
        assert not constrained_dominates((1.0, 1.0), (9.0, 9.0), 0.5, 0.0)

    def test_lower_violation_beats_higher(self):
        assert constrained_dominates((9.0,), (1.0,), 0.1, 0.2)
        assert not constrained_dominates((1.0,), (9.0,), 0.2, 0.1)

    def test_equal_violation_falls_back_to_pareto(self):
        assert constrained_dominates((1.0, 1.0), (2.0, 2.0), 0.3, 0.3)
        assert not constrained_dominates((1.0, 3.0), (2.0, 2.0), 0.3, 0.3)

    def test_ranks_accept_violations(self):
        values = [(1.0,), (2.0,), (3.0,)]
        # The best value is infeasible: it must rank after both
        # feasible designs.
        ranks = nondominated_ranks(values, [1.0, 0.0, 0.0])
        assert ranks == [2, 0, 1]
        with pytest.raises(ValueError, match="violations"):
            nondominated_ranks(values, [0.0])


class TestConstrainedFrontier:
    def test_feasible_offer_evicts_infeasible_entries(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(1), (1.0,), violation=2.0)
        frontier.offer(point(2), (1.5,), violation=0.5)
        assert [e.violation for e in frontier.entries] == [0.5]
        assert frontier.offer(point(3), (9.0,))  # feasible, worse value
        assert [e.point for e in frontier.entries] == [point(3)]
        assert all(e.feasible for e in frontier.entries)

    def test_infeasible_rejected_once_any_feasible_exists(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(1), (5.0,))
        assert not frontier.offer(point(2), (0.1,), violation=0.01)
        assert len(frontier) == 1

    def test_feasible_entries_view(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(1), (1.0,), violation=1.0)
        assert frontier.feasible_entries == []
        frontier.offer(point(2), (2.0,))
        assert [e.point for e in frontier.feasible_entries] == [point(2)]

    def test_best_prefers_feasible_over_better_infeasible(self):
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1), (1.0, 1.0), violation=0.5)
        frontier.offer(point(2), (3.0, 3.0))
        # Both coexist only while... they do not: feasible evicts.
        assert frontier.best("energy").point == point(2)

    def test_negative_violation_rejected(self):
        with pytest.raises(ValueError, match="violation"):
            ParetoFrontier(("energy",)).offer(point(1), (1.0,), violation=-1.0)

    def test_violation_survives_save_load(self, tmp_path):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(point(1), (1.0,), violation=2.5)
        path = tmp_path / "frontier.json"
        frontier.save(path)
        loaded = ParetoFrontier.load(path)
        assert loaded.entries == frontier.entries
        assert loaded.entries[0].violation == 2.5


class TestBestValidation:
    def test_unknown_objective_is_clear_value_error(self):
        """The satellite fix: asking for an objective the frontier does
        not track must raise a ValueError naming the valid ones."""
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1), (1.0, 2.0))
        with pytest.raises(ValueError, match="unknown objective 'edp'"):
            frontier.best("edp")
        with pytest.raises(ValueError, match="energy, latency"):
            frontier.best("edp")

    def test_unknown_objective_beats_empty_frontier_error(self):
        # Even on an empty frontier the objective name is checked first,
        # so the message points at the actual mistake.
        with pytest.raises(ValueError, match="unknown objective"):
            ParetoFrontier(("energy",)).best("latency")


class TestFrontierHypervolume:
    def test_counts_only_feasible_entries(self):
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(point(1), (2.0, 2.0), violation=1.0)
        assert frontier.hypervolume((10.0, 10.0)) == 0.0
        frontier.offer(point(2), (2.0, 2.0))
        assert frontier.hypervolume((10.0, 10.0)) == 64.0
