"""Golden-regression tests: the CS2/CS3 best points, checked in as JSON.

The fixtures under ``tests/fixtures/`` pin the best design (tile, mode,
fuse depth) *and its exact energy/latency numbers* for two degenerate
single-objective DSE runs shaped like the paper's case studies:

* **CS2** — ResNet-18 on the DepFiN-like architecture: the best DF
  strategy of a reduced tile/mode grid;
* **CS3** — FSRCNN across two architectures: the best (architecture,
  strategy) pair of the joint space.

Any cost-model, mapping-search or DSE change that silently shifts these
numbers fails here with a field-by-field diff.  To re-bless after an
*intentional* change::

    PYTHONPATH=src python -m tests.dse.test_golden

which rewrites both fixtures from the current code.
"""

import json
from pathlib import Path

import pytest

from repro.core.strategy import OverlapMode
from repro.dse import DesignSpace, DSERunner, ExhaustiveSearch
from repro.explore import Executor, MappingCache
from repro.mapping import SearchConfig

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

#: The reduced (CI-sized) search settings the fixtures were blessed
#: under.  Changing any of these is a fixture change: re-bless.
CONFIG = SearchConfig(lpf_limit=5, budget=60)
MODES = (OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE)

CS2_SPACE = DesignSpace(
    accelerators=("depfin_like",),
    tile_x=(4, 16, 60),
    tile_y=(18, 72),
    modes=MODES,
)
CS3_SPACE = DesignSpace(
    accelerators=("meta_proto_like_df", "edge_tpu_like_df"),
    tile_x=(16, 60),
    tile_y=(18, 72),
    modes=MODES,
)


def derive(space: DesignSpace, workload: str) -> dict:
    """Re-derive a golden record via a degenerate single-objective
    exhaustive DSE (the frontier of a 1-objective search is the argmin),
    then re-evaluate the winning design once for its latency."""
    cache = MappingCache()
    runner = DSERunner(
        space,
        workload,
        objectives=("energy",),
        executor=Executor(jobs=1, search_config=CONFIG, cache=cache),
        seed=0,
    )
    result = runner.run(ExhaustiveSearch())
    best = result.frontier.best("energy")

    from repro import DepthFirstEngine, get_accelerator, get_workload

    engine = DepthFirstEngine(
        get_accelerator(best.point.accelerator), CONFIG, cache=cache
    )
    schedule = engine.evaluate(get_workload(workload), best.point.strategy())
    assert schedule.energy_pj == best.values[0]  # internal consistency
    return {
        "workload": workload,
        "evaluations": result.evaluations,
        "best": {
            "accelerator": best.point.accelerator,
            "tile_x": best.point.tile_x,
            "tile_y": best.point.tile_y,
            "mode": best.point.mode.value,
            "fuse_depth": best.point.fuse_depth,
            "energy_pj": best.values[0],
            "latency_cycles": schedule.latency_cycles,
        },
    }


def diff_lines(expected: dict, derived: dict, prefix: str = "") -> list:
    """Field-by-field readable diff of two nested dicts."""
    lines = []
    for key in sorted(set(expected) | set(derived)):
        label = f"{prefix}{key}"
        a, b = expected.get(key), derived.get(key)
        if isinstance(a, dict) and isinstance(b, dict):
            lines.extend(diff_lines(a, b, prefix=f"{label}."))
        elif a != b:
            lines.append(f"  {label}: blessed {a!r} != derived {b!r}")
    return lines


def check_golden(name: str, space: DesignSpace, workload: str) -> None:
    path = FIXTURES / name
    assert path.exists(), f"missing golden fixture {path}"
    expected = json.loads(path.read_text())
    derived = derive(space, workload)
    drift = diff_lines(expected, derived)
    assert not drift, (
        f"\n{name} drifted from the blessed best point:\n"
        + "\n".join(drift)
        + f"\nIf the change is intentional, re-bless with:"
        + f"\n  PYTHONPATH=src python -m tests.dse.test_golden"
    )


@pytest.mark.parametrize(
    "name, space, workload",
    [
        ("cs2_best.json", CS2_SPACE, "resnet18"),
        ("cs3_best.json", CS3_SPACE, "fsrcnn"),
    ],
    ids=["cs2-resnet18-depfin", "cs3-fsrcnn-arch-choice"],
)
def test_golden_best_point(name, space, workload):
    check_golden(name, space, workload)


def _regenerate() -> None:  # pragma: no cover - maintenance entry point
    FIXTURES.mkdir(parents=True, exist_ok=True)
    for name, space, workload in (
        ("cs2_best.json", CS2_SPACE, "resnet18"),
        ("cs3_best.json", CS3_SPACE, "fsrcnn"),
    ):
        record = derive(space, workload)
        (FIXTURES / name).write_text(json.dumps(record, indent=2) + "\n")
        print(f"blessed {FIXTURES / name}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
