"""Unit tests for explicit stack-partition genes (PartitionAxis,
segment tables, per-workload cut decoding)."""

import json
import random

import pytest

from repro.dse.partition import (
    PartitionAxis,
    decode_cuts,
    validate_cuts,
    workload_segments,
)

from ..conftest import make_branchy_workload, make_tiny_workload


class TestWorkloadSegments:
    def test_zoo_name_and_object_agree(self):
        from repro.workloads.zoo import get_workload

        by_name = workload_segments("resnet18")
        by_object = workload_segments(get_workload("resnet18"))
        assert by_name == by_object
        assert len(by_name) == 12  # resnet18's branch-free segments

    def test_segments_are_layer_name_runs(self):
        table = workload_segments(make_tiny_workload())
        assert table == (("L1",), ("L2",), ("L3",))

    def test_branch_regions_stay_atomic(self):
        table = workload_segments(make_branchy_workload())
        assert ("c1", "c2", "join") in table


class TestDecodeCuts:
    SEGMENTS = (("L1",), ("L2",), ("L3",))

    def test_no_cuts_fuses_everything(self):
        assert decode_cuts((), self.SEGMENTS) == (("L1", "L2", "L3"),)

    def test_cuts_split_between_segments(self):
        assert decode_cuts((1,), self.SEGMENTS) == (("L1",), ("L2", "L3"))
        assert decode_cuts((1, 2), self.SEGMENTS) == (
            ("L1",), ("L2",), ("L3",)
        )

    def test_out_of_range_cuts_ignored(self):
        """A scenario genome is sized for its largest member: cuts
        beyond a smaller member's segment count are simply dropped."""
        assert decode_cuts((1, 7), self.SEGMENTS) == (("L1",), ("L2", "L3"))
        assert decode_cuts((9,), self.SEGMENTS) == (("L1", "L2", "L3"),)

    def test_multi_layer_segments_stay_atomic(self):
        segments = (("entry",), ("c1", "c2", "join"), ("exit",))
        assert decode_cuts((2,), segments) == (
            ("entry", "c1", "c2", "join"), ("exit",)
        )

    def test_decoded_partition_is_valid_for_partition_stacks(self, meta_df):
        """The invariant the encoding is built on: every decode is a
        legal explicit partition."""
        from repro.core.stacks import partition_stacks

        wl = make_branchy_workload()
        table = workload_segments(wl)
        count = len(table)
        for mask in range(1 << (count - 1)):
            cuts = tuple(b + 1 for b in range(count - 1) if mask >> b & 1)
            stacks = partition_stacks(
                wl, meta_df, explicit=decode_cuts(cuts, table)
            )
            flat = [n for s in stacks for n in s.layer_names]
            assert flat == [l.name for l in wl.topological_layers()]


class TestValidateCuts:
    def test_accepts_sorted_unique_in_range(self):
        assert validate_cuts((1, 3), 5) == (1, 3)
        assert validate_cuts((), 5) == ()

    def test_rejects_unsorted_duplicate_and_out_of_range(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_cuts((3, 1), 5)
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_cuts((2, 2), 5)
        with pytest.raises(ValueError, match="within 1..4"):
            validate_cuts((5,), 5)
        with pytest.raises(ValueError, match="within"):
            validate_cuts((0,), 5)


class TestFullAxis:
    def test_size_counts_auto_plus_cut_subsets(self):
        assert PartitionAxis(segments=4).size == 1 + 8
        assert PartitionAxis(segments=4, include_auto=False).size == 8
        assert PartitionAxis(segments=1).size == 2  # auto and ()

    def test_value_at_index_of_round_trip(self):
        axis = PartitionAxis(segments=4)
        values = list(axis.values())
        assert values[0] is None
        assert values[1] == ()
        assert len(values) == axis.size
        assert len(set(values)) == axis.size
        for index, value in enumerate(values):
            assert axis.index_of(value) == index
        with pytest.raises(IndexError):
            axis.value_at(axis.size)

    def test_contains(self):
        axis = PartitionAxis(segments=4)
        assert axis.contains(None) and axis.contains((1, 3))
        assert not axis.contains((4,))  # out of range
        assert not axis.contains((2, 1))  # unsorted
        assert not PartitionAxis(segments=4, include_auto=False).contains(None)

    def test_gene_encode_decode_round_trip(self):
        axis = PartitionAxis(segments=4)
        assert axis.gene_cardinalities() == (2, 2, 2, 2)
        for value in axis.values():
            genes = axis.encode(value)
            assert len(genes) == 4
            assert axis.decode(genes) == value

    def test_auto_encodes_with_zeroed_cut_genes(self):
        axis = PartitionAxis(segments=4)
        assert axis.encode(None) == (1, 0, 0, 0)
        assert axis.decode((1, 1, 0, 1)) is None  # dormant bits ignored
        assert axis.repair((1, 1, 0, 1)) == (1, 0, 0, 0)
        assert axis.repair((0, 1, 0, 1)) == (0, 1, 0, 1)

    def test_without_auto_genes_are_pure_cut_bits(self):
        axis = PartitionAxis(segments=4, include_auto=False)
        assert axis.gene_cardinalities() == (2, 2, 2)
        assert axis.encode((1, 3)) == (1, 0, 1)
        assert axis.decode((1, 0, 1)) == (1, 3)
        with pytest.raises(ValueError):
            axis.encode(None)

    def test_mutation_flips_binary_genes(self):
        axis = PartitionAxis(segments=4)
        rng = random.Random(0)
        assert axis.mutate_slot(1, 0, rng) == 1
        assert axis.mutate_slot(1, 1, rng) == 0

    def test_decode_length_checked(self):
        with pytest.raises(ValueError, match="partition gene"):
            PartitionAxis(segments=4).decode((1, 0))


class TestCandidatesAxis:
    def test_degenerates_to_a_grid(self):
        axis = PartitionAxis(segments=4, candidates=(None, (1,), (1, 3)))
        assert axis.size == 3
        assert axis.gene_cardinalities() == (3,)
        assert [axis.value_at(i) for i in range(3)] == [None, (1,), (1, 3)]
        assert axis.encode((1, 3)) == (2,)
        assert axis.decode((2,)) == (1, 3)
        assert axis.contains((1,)) and not axis.contains((2,))

    def test_candidates_validated(self):
        with pytest.raises(ValueError, match="empty"):
            PartitionAxis(segments=4, candidates=())
        with pytest.raises(ValueError, match="duplicate"):
            PartitionAxis(segments=4, candidates=((1,), (1,)))
        with pytest.raises(ValueError, match="within"):
            PartitionAxis(segments=4, candidates=((9,),))

    def test_mutation_redraws_index(self):
        axis = PartitionAxis(segments=4, candidates=(None, (1,), (2,)))
        rng = random.Random(0)
        assert all(
            0 <= axis.mutate_slot(0, 1, rng) < 3 for _ in range(10)
        )

    def test_segment_count_validated(self):
        with pytest.raises(ValueError, match=">= 1 segment"):
            PartitionAxis(segments=0)


class TestAxisJson:
    @pytest.mark.parametrize(
        "axis",
        [
            PartitionAxis(segments=4),
            PartitionAxis(segments=4, include_auto=False),
            PartitionAxis(segments=6, candidates=(None, (), (1, 3))),
        ],
    )
    def test_round_trip(self, axis):
        clone = PartitionAxis.from_json(json.loads(json.dumps(axis.to_json())))
        assert clone == axis

    def test_describe_mentions_segments(self):
        assert "4 branch-free segments" in PartitionAxis(segments=4).describe()
        assert "explicit partition" in PartitionAxis(
            segments=4, candidates=(None,)
        ).describe()
