"""Unit tests for the DSE feasibility constraints."""

import pytest

from repro import DepthFirstEngine, get_accelerator
from repro.core.strategy import DFStrategy, OverlapMode
from repro.dse import (
    DesignPoint,
    MemoryBudgetConstraint,
    ObjectiveCapConstraint,
    energy_cap,
    latency_cap,
    peak_activation_bytes,
)

from ..conftest import make_tiny_workload


@pytest.fixture(scope="module")
def tiny_result(fast_config):
    accel = get_accelerator("meta_proto_like_df")
    engine = DepthFirstEngine(accel, fast_config)
    return engine.evaluate(
        make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8)
    )


def meta_point(tx=8, ty=8):
    return DesignPoint(
        "meta_proto_like_df", tx, ty, OverlapMode.FULLY_CACHED
    )


class TestPeakActivationBytes:
    def test_positive_and_bounded_by_feature_maps(self, tiny_result):
        peak = peak_activation_bytes(tiny_result)
        assert peak > 0
        # A tile's working set can never exceed the whole workload's
        # feature maps plus caches by orders of magnitude; sanity bound.
        assert peak < 64 * 1024 * 1024

    def test_covers_every_stack_and_tile(self, tiny_result):
        per_tile = [
            max(
                (g.input_bytes + g.output_bytes for g in tile.geometry),
                default=0,
            )
            + tile.h_cache_bytes
            + tile.v_cache_line_bytes
            for stack in tiny_result.stacks
            for tile in stack.tiling.tile_types
        ]
        assert peak_activation_bytes(tiny_result) == max(per_tile)


class TestMemoryBudgetConstraint:
    def test_generous_budget_is_feasible(self, tiny_result):
        constraint = MemoryBudgetConstraint(budget_bytes=1 << 30)
        assert constraint.violation(meta_point(), tiny_result) == 0.0

    def test_tiny_budget_reports_relative_excess(self, tiny_result):
        constraint = MemoryBudgetConstraint(budget_bytes=1)
        violation = constraint.violation(meta_point(), tiny_result)
        assert violation == peak_activation_bytes(tiny_result) - 1

    def test_default_budget_is_accelerator_activation_capacity(
        self, tiny_result
    ):
        constraint = MemoryBudgetConstraint()
        accel = get_accelerator("meta_proto_like_df")
        assert (
            constraint.budget_for(meta_point())
            == accel.activation_capacity_bytes()
        )
        # Capacity lookups are cached per accelerator name.
        assert constraint.budget_for(meta_point()) == constraint.budget_for(
            meta_point(4, 4)
        )

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            MemoryBudgetConstraint(budget_bytes=0)

    def test_token_and_describe(self):
        assert MemoryBudgetConstraint(1024).token() == ["memory_budget", 1024]
        assert "1024" in MemoryBudgetConstraint(1024).describe()
        assert "accelerator" in MemoryBudgetConstraint().describe()


class TestActivationCapacity:
    def test_excludes_dram_and_weight_only_memories(self):
        accel = get_accelerator("meta_proto_like_df")
        capacity = accel.activation_capacity_bytes()
        assert 0 < capacity <= accel.on_chip_capacity_bytes()
        io_instances = {
            lvl.instance.uid: lvl.instance
            for lvl in accel.levels
            if lvl.operands & {"I", "O"}
            and not lvl.instance.is_dram
            and not lvl.instance.per_pe
        }
        assert capacity == sum(
            inst.size_bytes for inst in io_instances.values()
        )


class TestObjectiveCapConstraint:
    def test_cap_above_value_is_feasible(self, tiny_result):
        cap = ObjectiveCapConstraint("energy", tiny_result.energy_pj * 2)
        assert cap.violation(meta_point(), tiny_result) == 0.0

    def test_cap_below_value_is_relative_excess(self, tiny_result):
        cap = latency_cap(tiny_result.latency_cycles / 2)
        violation = cap.violation(meta_point(), tiny_result)
        assert violation == pytest.approx(1.0)

    def test_helpers_name_their_objectives(self):
        assert latency_cap(100.0).objective == "latency"
        assert energy_cap(100.0).objective == "energy"

    def test_rejects_bad_cap_and_unknown_objective(self):
        with pytest.raises(ValueError):
            ObjectiveCapConstraint("energy", 0.0)
        with pytest.raises(KeyError, match="unknown objective"):
            ObjectiveCapConstraint("carbon", 1.0)

    def test_token_distinguishes_objective_and_cap(self):
        assert latency_cap(5.0).token() != energy_cap(5.0).token()
        assert latency_cap(5.0).token() != latency_cap(6.0).token()
