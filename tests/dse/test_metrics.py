"""Unit tests for the frontier-quality metrics (hypervolume, additive
epsilon, reference points)."""

import pytest

from repro.dse import additive_epsilon, hypervolume, reference_point


class TestReferencePoint:
    def test_strictly_worse_than_every_vector(self):
        rows = [(1.0, 8.0), (3.0, 2.0), (2.0, 5.0)]
        ref = reference_point(rows)
        for row in rows:
            assert all(v < r for v, r in zip(row, ref))

    def test_constant_objective_still_padded(self):
        ref = reference_point([(5.0, 0.0), (5.0, 0.0)])
        assert ref[0] > 5.0
        assert ref[1] > 0.0

    def test_rejects_empty_and_bad_margin(self):
        with pytest.raises(ValueError):
            reference_point([])
        with pytest.raises(ValueError):
            reference_point([(1.0,)], margin=0.0)


class TestHypervolume1D:
    def test_single_objective_is_gap_to_reference(self):
        assert hypervolume([(3.0,), (7.0,)], (10.0,)) == 7.0

    def test_points_beyond_reference_contribute_nothing(self):
        assert hypervolume([(12.0,)], (10.0,)) == 0.0
        assert hypervolume([], (10.0,)) == 0.0


class TestHypervolume2D:
    def test_single_point_rectangle(self):
        assert hypervolume([(2.0, 3.0)], (10.0, 10.0)) == 8.0 * 7.0

    def test_two_point_staircase(self):
        # Union of (2,6)->(10,10) and (6,2)->(10,10): 32 + 32 - 16 = 48.
        assert hypervolume([(2.0, 6.0), (6.0, 2.0)], (10.0, 10.0)) == 48.0

    def test_dominated_point_changes_nothing(self):
        base = hypervolume([(2.0, 6.0), (6.0, 2.0)], (10.0, 10.0))
        more = hypervolume(
            [(2.0, 6.0), (6.0, 2.0), (7.0, 7.0)], (10.0, 10.0)
        )
        assert more == base

    def test_duplicates_change_nothing(self):
        assert hypervolume(
            [(2.0, 6.0), (2.0, 6.0)], (10.0, 10.0)
        ) == hypervolume([(2.0, 6.0)], (10.0, 10.0))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            hypervolume([(1.0, 2.0, 3.0)], (10.0, 10.0))


class TestHypervolumeMonteCarlo:
    def test_single_point_box_estimate(self):
        # One 3D point: the exact dominated volume is the full box, so
        # the Monte-Carlo estimate must be exact whatever the samples.
        exact = 8.0 * 7.0 * 6.0
        estimate = hypervolume([(2.0, 3.0, 4.0)], (10.0, 10.0, 10.0))
        assert estimate == pytest.approx(exact)

    def test_two_point_union_within_tolerance(self):
        # Inclusion-exclusion: 8*8*4 + 4*8*8 - 4*8*4 = 384.
        points = [(2.0, 2.0, 6.0), (6.0, 2.0, 2.0)]
        exact = 256.0 + 256.0 - 128.0
        estimate = hypervolume(points, (10.0, 10.0, 10.0), samples=20000)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_fixed_seed_is_deterministic(self):
        points = [(1.0, 2.0, 3.0), (3.0, 2.0, 1.0)]
        a = hypervolume(points, (5.0, 5.0, 5.0), seed=7)
        b = hypervolume(points, (5.0, 5.0, 5.0), seed=7)
        assert a == b
        assert hypervolume(points, (5.0, 5.0, 5.0), samples=1) >= 0.0

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            hypervolume([(1.0, 1.0, 1.0)], (2.0, 2.0, 2.0), samples=0)


class TestAdditiveEpsilon:
    def test_zero_when_weakly_dominating(self):
        approx = [(1.0, 4.0), (4.0, 1.0)]
        assert additive_epsilon(approx, approx) == 0.0
        assert additive_epsilon([(0.5, 0.5)], approx) == 0.0

    def test_uniform_shift_measured_exactly(self):
        ref = [(1.0, 4.0), (4.0, 1.0)]
        shifted = [(2.0, 5.0), (5.0, 2.0)]
        assert additive_epsilon(shifted, ref) == 1.0

    def test_empty_sets(self):
        assert additive_epsilon([], []) == 0.0
        assert additive_epsilon([], [(1.0,)]) == float("inf")
        assert additive_epsilon([(1.0,)], []) == 0.0

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError, match="arities"):
            additive_epsilon([(1.0, 2.0)], [(1.0,)])
