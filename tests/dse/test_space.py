"""Unit tests for the DSE design space and point encoding."""

import random

import pytest

from repro.core.optimizer import ALL_MODES, PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y
from repro.core.strategy import OverlapMode
from repro.dse import DesignPoint, DesignSpace


def small_space(**overrides):
    base = dict(
        accelerators=("meta_proto_like_df", "edge_tpu_like_df"),
        tile_x=(4, 16),
        tile_y=(4, 18),
        modes=(OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE),
        fuse_depths=(None, 2),
    )
    base.update(overrides)
    return DesignSpace(**base)


class TestDesignPoint:
    def test_strategy_carries_all_axes(self):
        point = DesignPoint(
            "meta_proto_like_df", 16, 18, OverlapMode.FULLY_CACHED, fuse_depth=2
        )
        strategy = point.strategy()
        assert strategy.tile_x == 16 and strategy.tile_y == 18
        assert strategy.mode is OverlapMode.FULLY_CACHED
        assert strategy.fuse_depth == 2

    def test_json_round_trip(self):
        point = DesignPoint(
            "edge_tpu_like_df", 4, 72, OverlapMode.FULLY_RECOMPUTE, fuse_depth=None
        )
        assert DesignPoint.from_json(point.to_json()) == point

    def test_sort_key_orders_mixed_fuse_depths(self):
        auto = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, None)
        capped = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, 2)
        assert sorted([capped, auto], key=lambda p: p.sort_key()) == [auto, capped]

    def test_describe_mentions_fuse_cap(self):
        point = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, 3)
        assert "fuse<=3" in point.describe()


class TestDesignSpace:
    def test_size_is_axis_product(self):
        assert small_space().size == 2 * 2 * 2 * 2 * 2
        assert len(small_space()) == small_space().size

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="empty"):
            small_space(modes=())

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ValueError, match="duplicates"):
            small_space(tile_x=(4, 4))

    def test_contains(self):
        space = small_space()
        inside = DesignPoint(
            "meta_proto_like_df", 4, 18, OverlapMode.FULLY_CACHED, 2
        )
        outside = DesignPoint(
            "meta_proto_like_df", 8, 18, OverlapMode.FULLY_CACHED, 2
        )
        assert inside in space and outside not in space

    def test_enumerate_covers_space_once(self):
        space = small_space()
        points = list(space.enumerate())
        assert len(points) == space.size
        assert len({p.key() for p in points}) == space.size

    def test_enumerate_reuses_classic_sweep_order(self):
        """Within one (accelerator, fuse depth) slab the order is the
        classic mode-major grid of ``grid_strategies``."""
        from repro.core.optimizer import grid_strategies

        space = small_space(
            accelerators=("meta_proto_like_df",), fuse_depths=(None,)
        )
        tiles = tuple((tx, ty) for tx in space.tile_x for ty in space.tile_y)
        expected = [
            (s.tile_x, s.tile_y, s.mode)
            for s in grid_strategies(tiles, space.modes)
        ]
        got = [(p.tile_x, p.tile_y, p.mode) for p in space.enumerate()]
        assert got == expected

    def test_point_at_matches_enumerate(self):
        space = small_space()
        points = list(space.enumerate())
        assert [space.point_at(i) for i in range(space.size)] == points
        with pytest.raises(IndexError):
            space.point_at(space.size)

    def test_genes_round_trip(self):
        space = small_space()
        for point in space.enumerate():
            assert space.point(space.genes(point)) == point

    def test_sample_is_seed_deterministic(self):
        space = small_space()
        a = [space.sample(random.Random(7)) for _ in range(5)]
        b = [space.sample(random.Random(7)) for _ in range(5)]
        assert a == b
        assert all(p in space for p in a)

    def test_json_round_trip(self):
        space = small_space()
        assert DesignSpace.from_json(space.to_json()) == space

    def test_paper_grid_matches_fig12(self):
        space = DesignSpace.paper_grid()
        assert space.tile_x == PAPER_TILE_GRID_X
        assert space.tile_y == PAPER_TILE_GRID_Y
        assert space.modes == ALL_MODES
        assert space.size == 6 * 6 * 3
