"""Unit tests for the DSE design space and point encoding."""

import random

import pytest

from repro.core.optimizer import ALL_MODES, PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y
from repro.core.strategy import OverlapMode
from repro.dse import DesignPoint, DesignSpace, PartitionAxis


def small_space(**overrides):
    base = dict(
        accelerators=("meta_proto_like_df", "edge_tpu_like_df"),
        tile_x=(4, 16),
        tile_y=(4, 18),
        modes=(OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE),
        fuse_depths=(None, 2),
    )
    base.update(overrides)
    return DesignSpace(**base)


class TestDesignPoint:
    def test_strategy_carries_all_axes(self):
        point = DesignPoint(
            "meta_proto_like_df", 16, 18, OverlapMode.FULLY_CACHED, fuse_depth=2
        )
        strategy = point.strategy()
        assert strategy.tile_x == 16 and strategy.tile_y == 18
        assert strategy.mode is OverlapMode.FULLY_CACHED
        assert strategy.fuse_depth == 2

    def test_json_round_trip(self):
        point = DesignPoint(
            "edge_tpu_like_df", 4, 72, OverlapMode.FULLY_RECOMPUTE, fuse_depth=None
        )
        assert DesignPoint.from_json(point.to_json()) == point

    def test_sort_key_orders_mixed_fuse_depths(self):
        auto = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, None)
        capped = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, 2)
        assert sorted([capped, auto], key=lambda p: p.sort_key()) == [auto, capped]

    def test_describe_mentions_fuse_cap(self):
        point = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, 3)
        assert "fuse<=3" in point.describe()


class TestDesignSpace:
    def test_size_is_axis_product(self):
        assert small_space().size == 2 * 2 * 2 * 2 * 2
        assert len(small_space()) == small_space().size

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="empty"):
            small_space(modes=())

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ValueError, match="duplicates"):
            small_space(tile_x=(4, 4))

    def test_contains(self):
        space = small_space()
        inside = DesignPoint(
            "meta_proto_like_df", 4, 18, OverlapMode.FULLY_CACHED, 2
        )
        outside = DesignPoint(
            "meta_proto_like_df", 8, 18, OverlapMode.FULLY_CACHED, 2
        )
        assert inside in space and outside not in space

    def test_enumerate_covers_space_once(self):
        space = small_space()
        points = list(space.enumerate())
        assert len(points) == space.size
        assert len({p.key() for p in points}) == space.size

    def test_enumerate_reuses_classic_sweep_order(self):
        """Within one (accelerator, fuse depth) slab the order is the
        classic mode-major grid of ``grid_strategies``."""
        from repro.core.optimizer import grid_strategies

        space = small_space(
            accelerators=("meta_proto_like_df",), fuse_depths=(None,)
        )
        tiles = tuple((tx, ty) for tx in space.tile_x for ty in space.tile_y)
        expected = [
            (s.tile_x, s.tile_y, s.mode)
            for s in grid_strategies(tiles, space.modes)
        ]
        got = [(p.tile_x, p.tile_y, p.mode) for p in space.enumerate()]
        assert got == expected

    def test_point_at_matches_enumerate(self):
        space = small_space()
        points = list(space.enumerate())
        assert [space.point_at(i) for i in range(space.size)] == points
        with pytest.raises(IndexError):
            space.point_at(space.size)

    def test_genes_round_trip(self):
        space = small_space()
        for point in space.enumerate():
            assert space.point(space.genes(point)) == point

    def test_sample_is_seed_deterministic(self):
        space = small_space()
        a = [space.sample(random.Random(7)) for _ in range(5)]
        b = [space.sample(random.Random(7)) for _ in range(5)]
        assert a == b
        assert all(p in space for p in a)

    def test_json_round_trip(self):
        space = small_space()
        assert DesignSpace.from_json(space.to_json()) == space

    def test_paper_grid_matches_fig12(self):
        space = DesignSpace.paper_grid()
        assert space.tile_x == PAPER_TILE_GRID_X
        assert space.tile_y == PAPER_TILE_GRID_Y
        assert space.modes == ALL_MODES
        assert space.size == 6 * 6 * 3


def partition_space(**overrides):
    base = dict(
        accelerators=("meta_proto_like_df",),
        tile_x=(4, 16),
        tile_y=(4,),
        modes=(OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE),
        partitions=PartitionAxis(segments=4),
    )
    base.update(overrides)
    return DesignSpace(**base)


class TestPartitionedPoints:
    def test_partition_and_fuse_depth_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            DesignPoint(
                "a", 4, 4, OverlapMode.FULLY_CACHED,
                fuse_depth=2, partition=(1,),
            )

    def test_bad_cut_tuples_rejected(self):
        for bad in ((2, 1), (1, 1), (0,)):
            with pytest.raises(ValueError, match="strictly increasing"):
                DesignPoint(
                    "a", 4, 4, OverlapMode.FULLY_CACHED, partition=bad
                )

    def test_json_round_trip_with_partition(self):
        point = DesignPoint(
            "a", 4, 4, OverlapMode.FULLY_CACHED, partition=(1, 3)
        )
        data = point.to_json()
        assert data["partition"] == [1, 3]
        assert DesignPoint.from_json(data) == point

    def test_unpartitioned_json_stays_byte_compatible(self):
        """Pre-partition checkpoints must keep matching byte-for-byte:
        the key only appears when used."""
        point = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, 2)
        assert "partition" not in point.to_json()

    def test_describe_renders_cuts(self):
        cut = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, partition=(1, 3))
        fused = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, partition=())
        assert "cuts=[1|3]" in cut.describe()
        assert "cuts=[all]" in fused.describe()

    def test_sort_key_orders_mixed_partitions(self):
        auto = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED)
        cut = DesignPoint("a", 4, 4, OverlapMode.FULLY_CACHED, partition=(1,))
        assert sorted([cut, auto], key=lambda p: p.sort_key()) == [auto, cut]

    def test_strategy_requires_segment_table(self):
        point = DesignPoint(
            "a", 4, 4, OverlapMode.FULLY_CACHED, partition=(1,)
        )
        with pytest.raises(ValueError, match="segment table"):
            point.strategy()
        strategy = point.strategy(segments=(("L1",), ("L2",), ("L3",)))
        assert strategy.stacks == (("L1",), ("L2", "L3"))
        assert strategy.fuse_depth is None


class TestPartitionSpace:
    def test_size_multiplies_partition_axis(self):
        assert partition_space().size == 1 * 2 * 1 * 2 * (1 + 8)

    def test_fuse_depth_grid_must_stay_default(self):
        with pytest.raises(ValueError, match="not both"):
            partition_space(fuse_depths=(None, 2))

    def test_enumerate_covers_space_once_and_matches_point_at(self):
        space = partition_space()
        points = list(space.enumerate())
        assert len(points) == space.size
        assert len({p.key() for p in points}) == space.size
        assert [space.point_at(i) for i in range(space.size)] == points

    def test_genes_round_trip_variable_length(self):
        space = partition_space()
        # 4 index genes + 1 auto gene + 3 cut genes.
        assert space.gene_cardinalities() == (1, 2, 1, 2, 2, 2, 2, 2)
        for point in space.enumerate():
            genes = space.genes(point)
            assert len(genes) == 8
            assert space.point(genes) == point

    def test_contains_checks_partition_validity(self):
        space = partition_space()
        auto = DesignPoint("meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED)
        cut = DesignPoint(
            "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED,
            partition=(1, 3),
        )
        capped = DesignPoint(
            "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED, fuse_depth=2
        )
        out_of_range = DesignPoint(
            "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED,
            partition=(4,),
        )
        assert auto in space and cut in space
        assert capped not in space  # fuse caps have no home on this axis
        assert out_of_range not in space

    def test_fuse_point_rejected_by_genes(self):
        space = partition_space()
        capped = DesignPoint(
            "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED, fuse_depth=2
        )
        with pytest.raises(ValueError, match="fuse_depth"):
            space.genes(capped)

    def test_partition_point_rejected_by_grid_space(self):
        space = small_space()
        cut = DesignPoint(
            "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED,
            partition=(1,),
        )
        assert cut not in space
        with pytest.raises(ValueError, match="explicit partition"):
            space.genes(cut)

    def test_sample_is_seed_deterministic_and_valid(self):
        space = partition_space()
        a = [space.sample(random.Random(7)) for _ in range(8)]
        b = [space.sample(random.Random(7)) for _ in range(8)]
        assert a == b
        assert all(p in space for p in a)
        assert any(p.partition not in (None,) for p in a)

    def test_json_round_trip(self):
        space = partition_space()
        assert DesignSpace.from_json(space.to_json()) == space
        assert "partitions" in space.to_json()

    def test_grid_space_json_stays_byte_compatible(self):
        """Checkpoint stamps of pre-partition runs compare the space
        dict verbatim — no new key may appear for grid spaces."""
        assert "partitions" not in small_space().to_json()

    def test_candidates_mode_behaves_like_a_grid(self):
        space = partition_space(
            partitions=PartitionAxis(
                segments=4, candidates=(None, (1,), (1, 2, 3))
            )
        )
        assert space.size == 1 * 2 * 1 * 2 * 3
        assert space.gene_cardinalities()[-1] == 3
        points = list(space.enumerate())
        assert [space.point_at(i) for i in range(space.size)] == points
        for point in points:
            assert space.point(space.genes(point)) == point

    def test_repair_genome_zeroes_dormant_cuts(self):
        space = partition_space()
        repaired = space.repair_genome((0, 1, 0, 1, 1, 1, 0, 1))
        assert repaired == (0, 1, 0, 1, 1, 0, 0, 0)
        untouched = (0, 1, 0, 1, 0, 1, 0, 1)
        assert space.repair_genome(untouched) == untouched
        # Grid spaces: identity.
        grid = small_space()
        assert grid.repair_genome((0, 1, 0, 1, 1)) == (0, 1, 0, 1, 1)
