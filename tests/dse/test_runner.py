"""Integration tests for the DSE runner on a tiny real workload."""

import json

import pytest

from repro.core.optimizer import best_point, sweep
from repro.core.scheduler import DepthFirstEngine
from repro.core.strategy import OverlapMode
from repro.dse import (
    DesignPoint,
    DesignSpace,
    DSERunner,
    ExhaustiveSearch,
    GeneticSearch,
    SearchStrategy,
)
from repro.dse.runner import CHECKPOINT_FORMAT_VERSION
from repro.explore import Executor, MappingCache

from ..conftest import make_tiny_workload

SPACE = DesignSpace(
    accelerators=("meta_proto_like_df",),
    tile_x=(4, 16),
    tile_y=(4, 18),
    modes=(OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE),
)


def executor(fast_config, jobs=1):
    return Executor(jobs=jobs, search_config=fast_config, cache=MappingCache())


class TestExhaustiveRunner:
    def test_single_objective_matches_classic_sweep(self, meta_df, fast_config):
        """A degenerate single-objective exhaustive DSE reproduces the
        classic ``sweep`` + ``best_point`` search exactly."""
        workload = make_tiny_workload()
        engine = DepthFirstEngine(meta_df, fast_config)
        tiles = tuple((tx, ty) for tx in SPACE.tile_x for ty in SPACE.tile_y)
        expected = best_point(
            sweep(engine, workload, tiles, SPACE.modes), "energy"
        )

        runner = DSERunner(
            SPACE, workload, ("energy",), executor(fast_config), seed=0
        )
        result = runner.run(ExhaustiveSearch())

        assert result.evaluations == SPACE.size
        best = result.frontier.best("energy")
        assert best.values[0] == expected.result.total.energy_pj
        assert best.point.strategy() == expected.strategy

    def test_multi_objective_frontier_is_nondominated(self, fast_config):
        workload = make_tiny_workload()
        runner = DSERunner(
            SPACE,
            workload,
            ("energy", "latency"),
            executor(fast_config),
            seed=0,
        )
        result = runner.run(ExhaustiveSearch())
        entries = result.frontier.entries
        assert entries
        from repro.dse import dominates

        for a in entries:
            for b in entries:
                assert not dominates(a.values, b.values)


class TestDeterminism:
    def test_parallel_genetic_run_is_bit_identical_to_serial(self, fast_config):
        """The acceptance property: ``--jobs N`` never changes a DSE
        result, only its wall-clock."""
        workload = make_tiny_workload()

        def run(jobs):
            runner = DSERunner(
                SPACE,
                workload,
                ("energy", "latency"),
                executor(fast_config, jobs=jobs),
                seed=0,
            )
            return runner.run(GeneticSearch(population=4, generations=2))

        serial, parallel = run(1), run(2)
        assert serial.evaluations == parallel.evaluations
        assert [
            (e.point, e.values) for e in serial.frontier.entries
        ] == [(e.point, e.values) for e in parallel.frontier.entries]

    def test_same_seed_same_result(self, fast_config):
        workload = make_tiny_workload()

        def run():
            runner = DSERunner(
                SPACE,
                workload,
                ("energy",),
                executor(fast_config),
                seed=7,
            )
            return runner.run(GeneticSearch(population=4, generations=2))

        first, second = run(), run()
        assert first.frontier.entries == second.frontier.entries


class TestBudgetAndDedup:
    def test_max_evals_caps_fresh_evaluations(self, fast_config):
        workload = make_tiny_workload()
        runner = DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            max_evals=3,
            seed=0,
        )
        result = runner.run(ExhaustiveSearch())
        assert result.evaluations == 3
        assert len(result.evaluated) == 3

    def test_rejects_bad_max_evals(self, fast_config):
        with pytest.raises(ValueError):
            DSERunner(
                SPACE, make_tiny_workload(), ("energy",), max_evals=0
            )

    def test_duplicate_proposals_evaluated_once(self, fast_config):
        class Repeater(SearchStrategy):
            """Proposes the same single point three rounds in a row."""

            def reset(self, space, rng):
                super().reset(space, rng)
                self.rounds = 0
                self.observed = []

            def propose(self):
                if self.rounds >= 3:
                    return []
                self.rounds += 1
                point = DesignPoint(
                    "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED
                )
                return [point, point]

            def observe(self, evaluated):
                self.observed.append(list(evaluated))

        workload = make_tiny_workload()
        strategy = Repeater()
        runner = DSERunner(
            SPACE, workload, ("energy",), executor(fast_config), seed=0
        )
        result = runner.run(strategy)
        assert result.evaluations == 1  # one cost-model evaluation total
        # ... but every round still observed the value (memo hits).
        assert [len(batch) for batch in strategy.observed] == [1, 1, 1]
        assert result.generations[1].cached == 1


class TestCheckpoint:
    def test_resume_skips_paid_evaluations(self, fast_config, tmp_path):
        workload = make_tiny_workload()
        path = tmp_path / "dse.json"

        first = DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            checkpoint=path,
            seed=0,
        ).run(ExhaustiveSearch())
        assert path.exists()
        assert first.evaluations == SPACE.size

        resumed = DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            checkpoint=path,
            seed=0,
        ).run(ExhaustiveSearch())
        assert resumed.evaluations == 0
        assert resumed.total_evaluations == SPACE.size
        assert resumed.frontier.entries == first.frontier.entries

    def test_mismatched_checkpoint_rejected(self, fast_config, tmp_path):
        workload = make_tiny_workload()
        path = tmp_path / "dse.json"
        DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            checkpoint=path,
            seed=0,
        ).run(ExhaustiveSearch())

        with pytest.raises(ValueError, match="objectives"):
            DSERunner(
                SPACE,
                workload,
                ("latency",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            ).run(ExhaustiveSearch())

    def test_changed_search_config_rejected(self, fast_config, tmp_path):
        """Resuming under different evaluation settings must fail loudly:
        the memoized objective values were computed under the old ones."""
        from repro.mapping import SearchConfig

        workload = make_tiny_workload()
        path = tmp_path / "dse.json"
        DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            checkpoint=path,
            seed=0,
        ).run(ExhaustiveSearch())

        other = Executor(
            jobs=1,
            search_config=SearchConfig(lpf_limit=6, budget=200),
            cache=MappingCache(),
        )
        with pytest.raises(ValueError, match="config"):
            DSERunner(
                SPACE,
                workload,
                ("energy",),
                other,
                checkpoint=path,
                seed=0,
            ).run(ExhaustiveSearch())

    def test_unknown_checkpoint_format_rejected(self, fast_config, tmp_path):
        path = tmp_path / "dse.json"
        path.write_text(json.dumps({"format": 999}))
        with pytest.raises(ValueError, match="format"):
            DSERunner(
                SPACE,
                make_tiny_workload(),
                ("energy",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            ).run(ExhaustiveSearch())

    @pytest.mark.parametrize("content", ["not json{", "[]"])
    def test_structurally_broken_checkpoint_is_value_error(
        self, fast_config, tmp_path, content
    ):
        """Torn or foreign files must surface as ValueError (the CLI
        turns that into a clean message), never a raw traceback."""
        path = tmp_path / "dse.json"
        path.write_text(content)
        with pytest.raises(ValueError):
            DSERunner(
                SPACE,
                make_tiny_workload(),
                ("energy",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            ).run(ExhaustiveSearch())

    def test_undecodable_evaluated_entries_are_value_error(
        self, fast_config, tmp_path
    ):
        runner = DSERunner(
            SPACE,
            make_tiny_workload(),
            ("energy",),
            executor(fast_config),
            checkpoint=tmp_path / "dse.json",
            seed=0,
        )
        bad_entries = [
            [[{"accelerator": "a"}, [1.0]]],  # missing fields (KeyError)
            [  # bad field value (ValueError from OverlapMode)
                [
                    {
                        "accelerator": "a",
                        "tile_x": 4,
                        "tile_y": 4,
                        "mode": "bogus",
                        "fuse_depth": None,
                    },
                    [1.0],
                ]
            ],
        ]
        for evaluated in bad_entries:
            payload = {
                "format": CHECKPOINT_FORMAT_VERSION,
                **runner._checkpoint_stamp(),
                "evaluated": evaluated,
            }
            runner.checkpoint.write_text(json.dumps(payload))
            with pytest.raises(ValueError, match="malformed DSE checkpoint"):
                runner.run(ExhaustiveSearch())


class AreaConstraint:
    """Test double: designs with tile area above a bound are infeasible,
    with the relative excess as the violation (mirrors the shape of the
    real constraints without touching evaluated results)."""

    name = "tile_area"

    def __init__(self, max_area: int) -> None:
        self.max_area = max_area

    def violation(self, point, result) -> float:
        area = point.tile_x * point.tile_y
        return max(0.0, (area - self.max_area) / self.max_area)

    def describe(self) -> str:
        return f"tile area <= {self.max_area}"

    def token(self) -> list:
        return [self.name, self.max_area]


class TestConstraints:
    def test_frontier_only_holds_feasible_designs(self, fast_config):
        workload = make_tiny_workload()
        runner = DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            constraints=(AreaConstraint(max_area=64),),
            seed=0,
        )
        result = runner.run(ExhaustiveSearch())
        assert result.evaluations == SPACE.size
        assert all(e.feasible for e in result.frontier.entries)
        assert all(
            e.point.tile_x * e.point.tile_y <= 64
            for e in result.frontier.entries
        )
        # Every rejected design is reported, worst-violating last.
        infeasible = result.infeasible
        assert infeasible
        assert all(e.violation > 0.0 for e in infeasible)
        violations = [e.violation for e in infeasible]
        assert violations == sorted(violations)
        assert len(infeasible) + sum(
            1 for _, _, v in result.evaluated.values() if v == 0.0
        ) == SPACE.size

    def test_constrained_best_matches_filtered_classic_sweep(
        self, meta_df, fast_config
    ):
        """The feasibility filter must reproduce 'sweep, drop the
        infeasible, take the argmin' exactly."""
        workload = make_tiny_workload()
        engine = DepthFirstEngine(meta_df, fast_config)
        tiles = tuple(
            (tx, ty)
            for tx in SPACE.tile_x
            for ty in SPACE.tile_y
            if tx * ty <= 64
        )
        expected = best_point(
            sweep(engine, workload, tiles, SPACE.modes), "energy"
        )
        runner = DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            constraints=(AreaConstraint(max_area=64),),
            seed=0,
        )
        best = runner.run(ExhaustiveSearch()).frontier.best("energy")
        assert best.values[0] == expected.result.total.energy_pj
        assert best.point.strategy() == expected.strategy

    def test_all_infeasible_frontier_ranks_by_violation(self, fast_config):
        workload = make_tiny_workload()
        runner = DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            constraints=(AreaConstraint(max_area=1),),
            seed=0,
        )
        result = runner.run(ExhaustiveSearch())
        assert result.frontier.feasible_entries == []
        min_violation = min(v for _, _, v in result.evaluated.values())
        assert all(
            e.violation == min_violation for e in result.frontier.entries
        )

    def test_constraint_mismatch_rejected_on_resume(
        self, fast_config, tmp_path
    ):
        workload = make_tiny_workload()
        path = tmp_path / "dse.json"
        DSERunner(
            SPACE,
            workload,
            ("energy",),
            executor(fast_config),
            checkpoint=path,
            seed=0,
        ).run(ExhaustiveSearch())
        with pytest.raises(ValueError, match="constraints"):
            DSERunner(
                SPACE,
                workload,
                ("energy",),
                executor(fast_config),
                constraints=(AreaConstraint(max_area=64),),
                checkpoint=path,
                seed=0,
            ).run(ExhaustiveSearch())


class TestConvergenceTracking:
    def test_hypervolume_monotone_across_generations(self, fast_config):
        workload = make_tiny_workload()
        runner = DSERunner(
            SPACE,
            workload,
            ("energy", "latency"),
            executor(fast_config),
            seed=0,
        )
        result = runner.run(GeneticSearch(population=4, generations=3))
        hv = [g.hypervolume for g in result.generations]
        assert all(v is not None for v in hv)
        assert hv == sorted(hv)
        assert result.hv_reference is not None
        assert len(result.hv_reference) == 2

    def test_generations_and_reference_survive_resume(
        self, fast_config, tmp_path
    ):
        workload = make_tiny_workload()
        path = tmp_path / "dse.json"

        def make_runner():
            return DSERunner(
                SPACE,
                workload,
                ("energy",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            )

        first = make_runner().run(ExhaustiveSearch())
        resumed = make_runner().run(ExhaustiveSearch())
        assert resumed.hv_reference == first.hv_reference
        # The resumed run replays no evaluations but keeps the full
        # convergence history and appends its own generation.
        assert len(resumed.generations) == len(first.generations) + 1
        assert (
            resumed.generations[: len(first.generations)]
            == first.generations
        )
        assert resumed.generations[-1].evaluated == 0
        assert (
            resumed.generations[-1].hypervolume
            == first.generations[-1].hypervolume
        )


class TestEpsilonVsReference:
    """--reference FRONTIER.json: per-generation additive epsilon
    against a stored reference frontier, alongside hypervolume."""

    def run_exhaustive(self, fast_config, reference=None, objectives=("energy", "latency")):
        runner = DSERunner(
            SPACE,
            make_tiny_workload(),
            objectives,
            executor(fast_config),
            reference=reference,
            seed=0,
        )
        return runner.run(ExhaustiveSearch())

    def test_no_reference_tracks_no_epsilon(self, fast_config):
        result = self.run_exhaustive(fast_config)
        assert all(s.epsilon is None for s in result.generations)

    def test_epsilon_against_own_final_frontier_reaches_zero(self, fast_config):
        baseline = self.run_exhaustive(fast_config)
        tracked = self.run_exhaustive(fast_config, reference=baseline.frontier)
        epsilons = [s.epsilon for s in tracked.generations]
        assert epsilons[-1] == 0.0  # the run covers its own reference
        observed = [e for e in epsilons if e is not None]
        # Monotone non-increasing: the frontier only gets closer to a
        # fixed reference set.
        assert observed == sorted(observed, reverse=True)

    def test_raw_value_rows_accepted(self, fast_config):
        reference = [(0.0, 0.0)]  # unreachably good reference point
        result = self.run_exhaustive(fast_config, reference=reference)
        assert result.generations[-1].epsilon > 0.0

    def test_objective_mismatch_rejected(self, fast_config):
        baseline = self.run_exhaustive(fast_config)
        with pytest.raises(ValueError, match="reference frontier tracks"):
            self.run_exhaustive(
                fast_config,
                reference=baseline.frontier,
                objectives=("energy",),
            )

    def test_arity_mismatch_rejected(self, fast_config):
        with pytest.raises(ValueError, match="arity"):
            DSERunner(
                SPACE,
                make_tiny_workload(),
                ("energy", "latency"),
                executor(fast_config),
                reference=[(1.0,)],
            )

    def test_empty_reference_rejected(self, fast_config):
        from repro.dse import ParetoFrontier

        with pytest.raises(ValueError, match="no feasible entries"):
            DSERunner(
                SPACE,
                make_tiny_workload(),
                ("energy", "latency"),
                executor(fast_config),
                reference=ParetoFrontier(("energy", "latency")),
            )

    def test_epsilon_survives_checkpoint_roundtrip(self, fast_config, tmp_path):
        from repro.dse import GenerationStats

        stats = GenerationStats(
            index=0, proposed=2, evaluated=2, cached=0, frontier_size=1,
            hypervolume=4.0, epsilon=0.25,
        )
        clone = GenerationStats.from_json(json.loads(json.dumps(stats.to_json())))
        assert clone == stats


class TestLoadReferenceFrontier:
    def make_frontier(self):
        from repro.dse import ParetoFrontier

        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(
            DesignPoint(
                accelerator="meta_proto_like_df",
                tile_x=4,
                tile_y=4,
                mode=OverlapMode.FULLY_CACHED,
            ),
            (2.0, 3.0),
        )
        return frontier

    def test_loads_bare_frontier_file(self, tmp_path):
        from repro.dse import load_reference_frontier

        path = tmp_path / "front.json"
        self.make_frontier().save(path)
        loaded = load_reference_frontier(path)
        assert loaded.to_json() == self.make_frontier().to_json()

    def test_loads_dse_output_summary(self, tmp_path):
        from repro.dse import load_reference_frontier

        path = tmp_path / "summary.json"
        path.write_text(
            json.dumps({"workload": "x", "frontier": self.make_frontier().to_json()})
        )
        assert len(load_reference_frontier(path)) == 1

    def test_rejects_non_frontier_files(self, tmp_path):
        from repro.dse import load_reference_frontier

        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        with pytest.raises(ValueError, match="not a frontier file"):
            load_reference_frontier(bad)
        bad.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a frontier file"):
            load_reference_frontier(bad)
        with pytest.raises(ValueError, match="not a frontier file"):
            load_reference_frontier(tmp_path / "missing.json")


class TestCheckpointBackCompat:
    def test_v2_checkpoint_resumes_losslessly(self, fast_config, tmp_path):
        """A pre-epsilon (format 2) checkpoint differs from v4 only by
        optional fields — rejecting it would throw away paid-for
        evaluations, so it must resume."""
        path = tmp_path / "dse.json"

        def runner():
            return DSERunner(
                SPACE,
                make_tiny_workload(),
                ("energy", "latency"),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            )

        first = runner().run(ExhaustiveSearch())
        assert first.evaluations == SPACE.size

        # Rewrite the checkpoint as its format-2 ancestor: same
        # payload, no epsilon in the generation stats.
        data = json.loads(path.read_text())
        data["format"] = 2
        for stats in data["generations"]:
            del stats["epsilon"]
        path.write_text(json.dumps(data))

        resumed = runner().run(ExhaustiveSearch())
        assert resumed.evaluations == 0  # nothing re-paid
        assert resumed.frontier.to_json() == first.frontier.to_json()

    def test_pre_v4_fuse_capped_checkpoint_rejected_as_stale(
        self, fast_config, tmp_path
    ):
        """This PR changed what fuse_depth >= 2 *means* (over-cap
        segments chunk instead of exploding per layer), so pre-v4
        checkpoints of capped grids hold values from the old cost
        model — resuming them would silently mix the two."""
        path = tmp_path / "dse.json"
        capped = DesignSpace(
            accelerators=SPACE.accelerators,
            tile_x=SPACE.tile_x,
            tile_y=SPACE.tile_y,
            modes=SPACE.modes,
            fuse_depths=(None, 2),
        )

        def runner(space):
            return DSERunner(
                space,
                make_tiny_workload(),
                ("energy",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            )

        runner(capped).run(ExhaustiveSearch())
        data = json.loads(path.read_text())
        data["format"] = 3
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="stale"):
            runner(capped).run(ExhaustiveSearch())

        # A v4 capped checkpoint, and pre-v4 uncapped ones (None / 1
        # evaluate identically under both rules), still resume.
        data["format"] = 4
        path.write_text(json.dumps(data))
        assert runner(capped).run(ExhaustiveSearch()).evaluations == 0

    def test_v3_checkpoint_resumes_losslessly(self, fast_config, tmp_path):
        """A pre-partition-genes (format 3) checkpoint is a byte-level
        subset of v4 for grid spaces: only the format stamp differs."""
        path = tmp_path / "dse.json"

        def runner():
            return DSERunner(
                SPACE,
                make_tiny_workload(),
                ("energy", "latency"),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            )

        first = runner().run(ExhaustiveSearch())
        data = json.loads(path.read_text())
        assert data["format"] == CHECKPOINT_FORMAT_VERSION == 4
        # The v4 body of a grid-space run must be v3's byte-compatible
        # superset: no partition keys anywhere.
        assert "partitions" not in data["space"]
        assert all(
            "partition" not in raw_point
            for raw_point, *_ in data["evaluated"]
        )
        data["format"] = 3
        path.write_text(json.dumps(data))

        resumed = runner().run(ExhaustiveSearch())
        assert resumed.evaluations == 0
        assert resumed.frontier.to_json() == first.frontier.to_json()


class TestPartitionGenesRunner:
    """End-to-end DSE over explicit stack-partition genes."""

    def partition_space(self):
        from repro.dse import PartitionAxis

        return DesignSpace(
            accelerators=("meta_proto_like_df",),
            tile_x=(4, 16),
            tile_y=(4,),
            modes=(OverlapMode.FULLY_CACHED,),
            partitions=PartitionAxis(segments=3),
        )

    def test_partition_values_match_explicit_strategy_runs(
        self, meta_df, fast_config
    ):
        """A partitioned design's objective values must equal a direct
        engine evaluation of the decoded explicit-stacks strategy."""
        from repro.dse import workload_segments

        workload = make_tiny_workload()
        space = self.partition_space()
        runner = DSERunner(
            space, workload, ("energy",), executor(fast_config), seed=0
        )
        result = runner.run(ExhaustiveSearch())
        assert result.evaluations == space.size

        engine = DepthFirstEngine(meta_df, fast_config)
        table = workload_segments(workload)
        for point, values, _ in result.evaluated.values():
            direct = engine.evaluate(workload, point.strategy(segments=table))
            assert values[0] == direct.total.energy_pj

    def test_auto_point_equals_fuse_depth_auto(self, fast_config):
        """The axis' automatic value is the *same design point* as the
        classic fuse_depths=(None,) grid's — the degenerate bridge the
        acceptance criterion rides on."""
        space = self.partition_space()
        auto_points = [p for p in space.enumerate() if p.partition is None]
        grid = DesignSpace(
            accelerators=space.accelerators,
            tile_x=space.tile_x,
            tile_y=space.tile_y,
            modes=space.modes,
        )
        assert auto_points == list(grid.enumerate())

    def test_parallel_partition_run_is_bit_identical_to_serial(
        self, fast_config
    ):
        workload = make_tiny_workload()

        def run(jobs):
            runner = DSERunner(
                self.partition_space(),
                workload,
                ("energy", "latency"),
                executor(fast_config, jobs=jobs),
                seed=0,
            )
            return runner.run(GeneticSearch(population=4, generations=2))

        serial, parallel = run(1), run(2)
        assert serial.evaluations == parallel.evaluations
        assert [
            (e.point, e.values) for e in serial.frontier.entries
        ] == [(e.point, e.values) for e in parallel.frontier.entries]

    def test_partition_checkpoint_round_trip(self, fast_config, tmp_path):
        """Format-4 checkpoints persist partition genes and resume."""
        workload = make_tiny_workload()
        path = tmp_path / "dse.json"

        def runner():
            return DSERunner(
                self.partition_space(),
                workload,
                ("energy",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            )

        first = runner().run(ExhaustiveSearch())
        data = json.loads(path.read_text())
        assert data["format"] == CHECKPOINT_FORMAT_VERSION
        assert data["space"]["partitions"]["segments"] == 3
        assert any(
            raw_point.get("partition")
            for raw_point, *_ in data["evaluated"]
        )

        resumed = runner().run(ExhaustiveSearch())
        assert resumed.evaluations == 0
        assert resumed.frontier.entries == first.frontier.entries

    def test_precomputed_segment_tables_accepted_and_validated(
        self, fast_config
    ):
        """Callers that already resolved the tables (the CLI) hand them
        over; a count mismatch with the scenario members is an error."""
        from repro.dse import workload_segments

        workload = make_tiny_workload()
        table = workload_segments(workload)
        runner = DSERunner(
            self.partition_space(),
            workload,
            ("energy",),
            executor(fast_config),
            member_segments=(table,),
            seed=0,
        )
        assert runner._member_segments == (table,)
        with pytest.raises(ValueError, match="segment table"):
            DSERunner(
                self.partition_space(),
                workload,
                ("energy",),
                executor(fast_config),
                member_segments=(table, table),
            )

    def test_partition_axis_mismatch_rejected_on_resume(
        self, fast_config, tmp_path
    ):
        """Resuming a partition-gened run under a plain grid space (or
        vice versa) must be rejected: the stamps differ."""
        workload = make_tiny_workload()
        path = tmp_path / "dse.json"
        DSERunner(
            self.partition_space(),
            workload,
            ("energy",),
            executor(fast_config),
            checkpoint=path,
            seed=0,
        ).run(ExhaustiveSearch())

        grid = DesignSpace(
            accelerators=("meta_proto_like_df",),
            tile_x=(4, 16),
            tile_y=(4,),
            modes=(OverlapMode.FULLY_CACHED,),
        )
        with pytest.raises(ValueError, match="space"):
            DSERunner(
                grid,
                workload,
                ("energy",),
                executor(fast_config),
                checkpoint=path,
                seed=0,
            ).run(ExhaustiveSearch())
