"""EvalService tests: queueing, dedup/coalescing, backpressure, error
propagation, and the executor's service backend."""

import time

import pytest

from repro import obs
from repro.core.strategy import DFStrategy, OverlapMode
from repro.explore import EvalJob, Executor, MappingCache, SweepSpec
from repro.serve import (
    CacheClient,
    CacheServer,
    EvalService,
    ServiceError,
    ServiceOverloaded,
    job_key,
)

from ..conftest import make_tiny_workload

TILES = ((4, 4), (16, 16))
MODES = (OverlapMode.FULLY_CACHED, OverlapMode.FULLY_RECOMPUTE)


def tiny_job(tile: int = 8, tag: str = "") -> EvalJob:
    return EvalJob(
        accelerator="meta_proto_like_df",
        workload="fsrcnn",
        strategy=DFStrategy(tile_x=tile, tile_y=tile),
        tag=tag,
    )


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_workload()


@pytest.fixture(scope="module")
def grid_spec(tiny):
    return SweepSpec.tile_grid("meta_proto_like_df", tiny, TILES, MODES)


@pytest.fixture(scope="module")
def serial_results(grid_spec, fast_config):
    return Executor(jobs=1, search_config=fast_config).run(grid_spec)


class TestJobKey:
    def test_tag_does_not_split_identical_work(self):
        assert job_key(tiny_job(tag="a")) == job_key(tiny_job(tag="b"))

    def test_different_strategies_differ(self):
        assert job_key(tiny_job(4)) != job_key(tiny_job(8))

    def test_object_refs_key_by_identity(self, tiny):
        job = EvalJob(
            accelerator="meta_proto_like_df",
            workload=tiny,
            strategy=DFStrategy(tile_x=4, tile_y=4),
        )
        assert job_key(job) == job_key(job)
        other = EvalJob(
            accelerator="meta_proto_like_df",
            workload=make_tiny_workload(),
            strategy=DFStrategy(tile_x=4, tile_y=4),
        )
        assert job_key(job) != job_key(other)


class TestLifecycle:
    def test_submit_before_start_raises(self):
        with pytest.raises(RuntimeError, match="start"):
            EvalService(shards=0).submit(tiny_job())

    def test_start_stop_idempotent(self):
        service = EvalService(shards=0)
        assert service.start() is service
        assert service.start() is service
        assert service.running
        service.stop()
        service.stop()
        assert not service.running

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            EvalService(shards=-1)
        with pytest.raises(ValueError, match="max_pending"):
            EvalService(max_pending=0)

    def test_embedded_server_address_published(self):
        with EvalService(shards=0) as service:
            host, port = service.server_address
            assert port > 0

    def test_stop_fails_leftover_futures(self):
        """Stopping with jobs still queued must resolve their futures
        (as errors), never leave a caller blocked forever."""
        service = EvalService(shards=0).start()
        future = service.submit(tiny_job())
        service.stop()
        with pytest.raises(ServiceError, match="service stopped"):
            future.result(timeout=1.0)

    def test_restart_regains_full_backpressure_capacity(self):
        """Jobs in flight at stop() never release their slots, so a
        restarted service must get a fresh semaphore — not inherit the
        leak."""
        service = EvalService(shards=0, max_pending=2)
        for _ in range(2):
            service.start()
            service.submit(tiny_job(4))
            service.submit(tiny_job(8))
            with pytest.raises(ServiceOverloaded):
                service.submit(tiny_job(16), block=False)
            service.stop()


class TestDedupAndBackpressure:
    """shards=0 accepts jobs without evaluating them, so the queue's
    dedup and backpressure behaviour is observable in isolation."""

    def test_identical_inflight_jobs_coalesce(self):
        with EvalService(shards=0) as service:
            first = service.submit(tiny_job(tag="x"))
            second = service.submit(tiny_job(tag="y"))
            assert second is first
            assert service.submitted == 1
            assert service.coalesced == 1

    def test_distinct_jobs_do_not_coalesce(self):
        with EvalService(shards=0) as service:
            assert service.submit(tiny_job(4)) is not service.submit(tiny_job(8))
            assert service.submitted == 2

    def test_nonblocking_submit_overload(self):
        with EvalService(shards=0, max_pending=2) as service:
            service.submit(tiny_job(4))
            service.submit(tiny_job(8))
            with pytest.raises(ServiceOverloaded, match="2 evaluations"):
                service.submit(tiny_job(16), block=False)

    def test_blocking_submit_times_out(self):
        with EvalService(shards=0, max_pending=1) as service:
            service.submit(tiny_job(4))
            with pytest.raises(ServiceOverloaded):
                service.submit(tiny_job(8), timeout=0.05)

    def test_coalesced_submit_needs_no_slot(self):
        with EvalService(shards=0, max_pending=1) as service:
            first = service.submit(tiny_job(4))
            # The bound is saturated, but an identical job rides along.
            assert service.submit(tiny_job(4), block=False) is first

    def test_pending_future_timeout(self):
        with EvalService(shards=0) as service:
            future = service.submit(tiny_job())
            assert not future.done()
            with pytest.raises(TimeoutError, match="still pending"):
                future.result(timeout=0.05)

    def test_stats_shape(self):
        with EvalService(shards=0, max_pending=5) as service:
            service.submit(tiny_job())
            stats = service.stats()
        assert stats["submitted"] == 1
        assert stats["in_flight"] == 1
        assert stats["max_pending"] == 5
        assert "cache" in stats


class TestEvaluation:
    def test_map_matches_serial_in_order(
        self, grid_spec, fast_config, serial_results
    ):
        with EvalService(shards=2, search_config=fast_config) as service:
            results = service.map(list(grid_spec))
        assert len(results) == len(serial_results)
        for served, serial in zip(results, serial_results):
            assert served.total == serial.result.total

    def test_errors_propagate_and_service_survives(self, fast_config):
        bad = EvalJob(
            accelerator="no_such_accelerator",
            workload="fsrcnn",
            strategy=DFStrategy(tile_x=4, tile_y=4),
        )
        with EvalService(shards=1, search_config=fast_config) as service:
            with pytest.raises(ServiceError, match="shard 0"):
                service.submit(bad).result(timeout=60)
            assert service.errors == 1
            # The shard is still alive and evaluating.
            good = service.submit(tiny_job())
            assert good.result(timeout=600) is not None
            assert service.stats()["completed"] == 1


class TestShardDeath:
    def test_dead_shard_surfaces_as_error_not_hang(self, fast_config):
        """gather() watches shard liveness: a killed worker turns into
        a ServiceError for the waiter instead of an eternal block."""
        with EvalService(shards=1, search_config=fast_config) as service:
            # Let the shard come up, then kill it out from under us.
            worker = service._workers[0]
            for _ in range(100):
                if worker.is_alive():
                    break
                time.sleep(0.05)
            worker.terminate()
            worker.join(timeout=10)
            future = service.submit(tiny_job())
            with pytest.raises(ServiceError, match="died"):
                service.gather([future])

    def test_death_report_names_shard_and_inflight_jobs(self, fast_config):
        """The crash log identifies the casualty and its work: the error
        names the shard id and the in-flight job keys queued on it, and
        the death is counted exactly once."""
        obs.enable()  # metrics-only: the death should also be counted
        try:
            with EvalService(shards=1, search_config=fast_config) as service:
                worker = service._workers[0]
                for _ in range(100):
                    if worker.is_alive():
                        break
                    time.sleep(0.05)
                worker.terminate()
                worker.join(timeout=10)
                job = tiny_job()
                future = service.submit(job)
                with pytest.raises(ServiceError) as err:
                    service.gather([future])
                message = str(err.value)
                assert "shard 0" in message
                assert worker.name in message
                assert job.describe() in message
                assert service.shard_deaths == 1
                assert service.stats()["shard_deaths"] == 1
                # A later gather over the same corpse does not recount.
                with pytest.raises(ServiceError):
                    service.gather([service.submit(tiny_job(tile=16))])
                assert service.shard_deaths == 1
            assert (
                obs.metrics().value("service_shard_deaths_total") == 1
            )
        finally:
            obs.reset()


class TestExecutorServiceBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Executor(backend="threads")

    def test_service_backend_identical_to_serial(
        self, grid_spec, fast_config, serial_results
    ):
        with Executor(jobs=2, backend="service", search_config=fast_config) as ex:
            served = ex.run(grid_spec)
        assert [r.index for r in served] == [r.index for r in serial_results]
        for s, p in zip(serial_results, served):
            assert s.job == p.job
            assert s.result.total == p.result.total

    def test_service_persists_across_runs_and_harvests_live(
        self, grid_spec, fast_config
    ):
        cache = MappingCache()
        with Executor(
            jobs=2, backend="service", search_config=fast_config, cache=cache
        ) as ex:
            assert ex.service is None  # lazy: nothing started yet
            first = ex.run(grid_spec)
            service = ex.service
            assert service is not None
            assert len(cache) > 0  # entries landed live, no harvest step
            again = ex.run(grid_spec)
            assert ex.service is service  # same warm service, same shards
            for a, b in zip(first, again):
                assert a.result.total == b.result.total
        assert ex.service is None  # context exit stopped it

    def test_explicit_serial_backend(self, grid_spec, fast_config, serial_results):
        results = Executor(
            jobs=4, backend="serial", search_config=fast_config
        ).run(grid_spec)
        for s, p in zip(serial_results, results):
            assert s.result.total == p.result.total

    def test_cache_client_routes_shards_to_external_server(
        self, grid_spec, fast_config
    ):
        """Executor(cache=CacheClient, backend='service'): the shards
        connect straight to the external server — its table fills, and
        no embedded server is started."""
        shared = MappingCache()
        with CacheServer(cache=shared) as srv:
            with CacheClient(srv.address) as client:
                with Executor(
                    jobs=2,
                    backend="service",
                    search_config=fast_config,
                    cache=client,
                ) as ex:
                    ex.run(grid_spec)
                    assert ex.service._server is None
                    assert ex.service.server_address == srv.address
            assert len(shared) > 0

    def test_process_backend_through_cache_client(self, fast_config, tiny):
        """The classic process pool pre-warms from and harvests back to
        a *remote* cache when its handle is a CacheClient."""
        spec = SweepSpec.tile_grid(
            "meta_proto_like_df", tiny, ((4, 4), (16, 16)), MODES[:1]
        )
        shared = MappingCache()
        with CacheServer(cache=shared) as srv:
            with CacheClient(srv.address) as client:
                results = Executor(
                    jobs=2, search_config=fast_config, cache=client
                ).run(spec)
            assert len(shared) > 0  # harvest merged into the server
        serial = Executor(jobs=1, search_config=fast_config).run(spec)
        for s, p in zip(serial, results):
            assert s.result.total == p.result.total
