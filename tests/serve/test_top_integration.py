"""End-to-end: `repro top` monitoring a live `repro serve` subprocess."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.serve import CacheClient

from .test_cache_server import make_result

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def serve_proc():
    """A real `repro serve` subprocess on a free port (the tier-1 suite
    may run without the package installed, so PYTHONPATH carries src)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--timeout", "120"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        # Startup contract: the first line announces the picked port.
        line = proc.stdout.readline()
        assert "cache server listening on " in line
        yield proc, line.rsplit(" ", 1)[-1].strip()
    finally:
        if proc.poll() is None:
            proc.terminate()
        proc.wait(timeout=30)
        proc.stdout.close()


def test_top_one_refresh_cycle_against_live_server(serve_proc, capsys):
    proc, address = serve_proc
    with CacheClient(address) as client:
        client.put("warm", make_result(1))
        client.clear()
        assert client.get("warm") == make_result(1)  # a server-side hit

        exit_code = main(
            ["top", address, "--iterations", "2", "--interval", "0.1",
             "--no-clear"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        frames = out.count("repro top — ")
        assert frames == 2
        # First frame defers rates; the refresh computes them.
        assert "first sample" in out
        assert "evals/s" in out
        assert "hits 1" in out

        client.shutdown_server()
    proc.wait(timeout=30)
    assert proc.returncode == 0
