"""CacheServer/CacheClient tests: protocol round-trips, the drop-in
MappingCache surface, persistence, and multi-client coherence."""

import json
import socket
import threading

import pytest

from repro.mapping.cache import MappingCache, cache_file_info
from repro.mapping.cost import CostResult, Traffic
from repro.mapping.loma import SearchResult
from repro.mapping.temporal import TemporalMapping
from repro.serve import (
    CacheClient,
    CacheServer,
    CacheServerError,
    format_address,
    parse_address,
)


def make_result(seed: int) -> SearchResult:
    """A small, distinct, encodable search result."""
    cost = CostResult(
        mac_count=100 + seed,
        mac_energy_pj=float(seed),
        compute_cycles=10 * seed + 1,
        latency_cycles=20 * seed + 2,
    )
    cost.traffic[("I", 0)] = Traffic(seed, seed + 1, float(seed) / 2)
    return SearchResult(
        mapping=TemporalMapping(
            loops=(("K", seed + 1),), boundaries={"I": (0, 1)}
        ),
        cost=cost,
        evaluated=seed,
    )


@pytest.fixture
def server():
    with CacheServer() as srv:
        yield srv


@pytest.fixture
def client(server):
    with CacheClient(server.address) as cli:
        yield cli


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("localhost:8421") == ("localhost", 8421)

    def test_tuple_passthrough(self):
        assert parse_address(("10.0.0.1", "99")) == ("10.0.0.1", 99)

    def test_format_roundtrip(self):
        assert parse_address(format_address(("h", 5))) == ("h", 5)

    @pytest.mark.parametrize("bad", ["nohost", ":123", "h:port", "h:"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address(bad)


class TestServerLifecycle:
    def test_start_is_idempotent(self, server):
        assert server.start() is server
        assert server.running

    def test_stop_is_idempotent(self):
        srv = CacheServer().start()
        srv.stop()
        srv.stop()
        assert not srv.running

    def test_address_reports_picked_port(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0
        assert server.describe() == f"127.0.0.1:{port}"

    def test_snapshot_interval_requires_path(self):
        with pytest.raises(ValueError, match="snapshot_path"):
            CacheServer(snapshot_interval=1.0)
        with pytest.raises(ValueError, match="snapshot_interval"):
            CacheServer(snapshot_path="x.json", snapshot_interval=0.0)


class TestClientBasics:
    def test_ping(self, client):
        assert client.ping() == 0

    def test_get_miss_then_put_then_hit(self, client, server):
        key = ("layer", "accel", 1)
        assert client.get(key) is None
        assert client.misses == 1
        entry = make_result(3)
        client.put(key, entry)
        assert client.get(key) == entry
        assert client.hits == 1
        assert len(server.cache) == 1

    def test_local_read_cache_spares_the_server(self, client, server):
        key = "k"
        client.put(key, make_result(1))
        before = server.requests["get"]
        for _ in range(5):
            assert client.get(key) is not None
        assert server.requests["get"] == before  # all served locally

    def test_connect_failure_raises(self):
        port = free_port()  # nothing listening here
        with pytest.raises(CacheServerError, match="unreachable"):
            CacheClient(("127.0.0.1", port))

    def test_request_after_shutdown_raises(self):
        srv = CacheServer().start()
        cli = CacheClient(srv.address)
        cli.shutdown_server()
        for _ in range(50):  # the handler thread stops the server async
            if not srv.running:
                break
            threading.Event().wait(0.05)
        assert not srv.running
        with pytest.raises(CacheServerError):
            cli.ping()

    def test_unknown_op_is_reported_not_fatal(self, client):
        with pytest.raises(CacheServerError, match="unknown cache-server op"):
            client._request({"op": "frobnicate"})
        assert client.ping() == 0  # connection still usable

    def test_non_object_request_is_reported(self, server):
        with socket.create_connection(server.address) as sock:
            sock.sendall(b"[1,2,3]\n")
            response = json.loads(sock.makefile().readline())
        assert response["ok"] is False
        assert "JSON object" in response["error"]


class TestMappingCacheSurface:
    """CacheClient must be a drop-in for MappingCache everywhere the
    engines and executors touch one."""

    def test_snapshot_merge_keys_delta_parity(self, client, server):
        local = MappingCache()
        entries = {f"key{i}": make_result(i) for i in range(4)}
        local.merge(entries)
        assert client.merge(entries) == 4
        assert client.merge(entries) == 0  # nothing new the second time
        assert client.keys() == local.keys()
        assert client.snapshot() == local.snapshot()
        assert client.delta(["key0", "key1"]) == local.delta(["key0", "key1"])
        assert len(client) == len(local)

    def test_contains(self, client):
        client.put("present", make_result(1))
        assert "present" in client
        assert "absent" not in client

    def test_stats_shape(self, client):
        client.put("k", make_result(1))
        client.get("k")
        client.get("missing")
        assert client.stats == {"hits": 1, "misses": 1, "size": 1}

    def test_server_stats_load_counters(self, client, server):
        """/stats reports table hit/miss/size plus live load: open
        connections, in-flight requests and table-lock queue depth."""
        client.put("k", make_result(1))
        stats = client.server_stats()
        assert stats["size"] == 1
        assert stats["requests"]["put"] == 1
        # this stats request is itself in flight; nothing else is queued
        assert stats["in_flight"] == 1
        assert stats["queue_depth"] == 0
        assert stats["connections"] == 1
        assert stats["connections_total"] >= 1
        with CacheClient(server.address) as second:
            assert second.server_stats()["connections"] == 2
        # a handled request fully drains the counters
        assert server.in_flight == 0 and server.queue_depth == 0

    def test_connection_counter_drops_on_close(self, server):
        with CacheClient(server.address) as cli:
            assert cli.server_stats()["connections"] == 1
        deadline = threading.Event()
        for _ in range(50):  # handler thread teardown is asynchronous
            if server.connections == 0:
                break
            deadline.wait(0.02)
        assert server.connections == 0
        assert server.connections_total >= 1

    def test_clear_is_local_only(self, client, server):
        client.put("k", make_result(1))
        client.get("missing")
        client.clear()
        assert client.stats["hits"] == 0 and client.stats["misses"] == 0
        assert len(server.cache) == 1  # the shared table is untouched
        assert client.get("k") == make_result(1)  # re-fetched remotely

    def test_local_read_cache_is_bounded(self, server):
        """A long-lived client's memory stays flat: the local read
        cache evicts oldest-first at local_bound; evicted keys simply
        re-fetch from the server."""
        with CacheClient(server.address, local_bound=2) as cli:
            for i in range(5):
                cli.put(f"k{i}", make_result(i))
            assert len(cli._local) == 2
            assert cli.get("k0") == make_result(0)  # still correct

    def test_rejects_bad_local_bound(self, server):
        with pytest.raises(ValueError, match="local_bound"):
            CacheClient(server.address, local_bound=0)

    def test_structured_keys_normalize_like_mapping_cache(self, client, server):
        structured = (("conv", 8, 3), "meta:abc", (("I", 2),), (5, 60))
        client.put(structured, make_result(7))
        # The server's table holds the same normalized key a local
        # MappingCache would use, so disk snapshots stay compatible.
        local = MappingCache()
        local.put(structured, make_result(7))
        assert server.cache.keys() == local.keys()
        assert client.get(structured) == make_result(7)


class TestPersistence:
    def test_save_op_writes_loadable_file(self, tmp_path, server, client):
        client.put("k", make_result(2))
        target = tmp_path / "snap.json"
        written = client.save(target)
        assert written == target
        assert cache_file_info(target)["status"] == "ok"
        assert MappingCache(target).get("k") == make_result(2)

    def test_save_without_any_path_raises(self, client):
        with pytest.raises(CacheServerError, match="snapshot path"):
            client.save()

    def test_periodic_snapshot(self, tmp_path):
        target = tmp_path / "periodic.json"
        cache = MappingCache()
        with CacheServer(
            cache=cache, snapshot_path=target, snapshot_interval=0.05
        ) as srv:
            with CacheClient(srv.address) as cli:
                cli.put("k", make_result(1))
                for _ in range(100):
                    if srv.snapshots_written and target.exists():
                        break
                    threading.Event().wait(0.05)
        assert srv.snapshots_written >= 1
        assert cache_file_info(target)["status"] == "ok"

    def test_final_snapshot_on_stop(self, tmp_path):
        target = tmp_path / "final.json"
        srv = CacheServer(snapshot_path=target).start()
        with CacheClient(srv.address) as cli:
            cli.put("k", make_result(9))
        srv.stop()
        assert MappingCache(target).get("k") == make_result(9)

    def test_fronted_cache_is_live(self):
        """Entries put through the wire land in the fronted handle
        immediately — the executor harvests nothing, it already has
        everything."""
        mine = MappingCache()
        with CacheServer(cache=mine) as srv:
            with CacheClient(srv.address) as cli:
                cli.put("live", make_result(5))
                assert mine.get("live") == make_result(5)


class TestCoherenceStress:
    N_CLIENTS = 8
    KEYS_PER_CLIENT = 12

    def test_many_clients_converge_to_serial_union(self, server):
        """Many clients hammer one server: every client writes its own
        shard of keys and reads everyone else's.  The final table must
        equal the serial union, and reads of other clients' keys must
        be server-side hits (intra-run cross-worker sharing)."""
        barrier = threading.Barrier(self.N_CLIENTS)
        errors: list = []
        fetched: dict[int, dict] = {}

        def worker(me: int) -> None:
            try:
                with CacheClient(server.address) as cli:
                    for i in range(self.KEYS_PER_CLIENT):
                        cli.put(f"c{me}/k{i}", make_result(me * 1000 + i))
                    barrier.wait(timeout=30)
                    got = {}
                    for other in range(self.N_CLIENTS):
                        for i in range(self.KEYS_PER_CLIENT):
                            got[(other, i)] = cli.get(f"c{other}/k{i}")
                    fetched[me] = got
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(me,))
            for me in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors

        # Final table == the serial union of every client's writes.
        union = MappingCache()
        for me in range(self.N_CLIENTS):
            for i in range(self.KEYS_PER_CLIENT):
                union.put(f"c{me}/k{i}", make_result(me * 1000 + i))
        assert server.cache.keys() == union.keys()
        assert server.cache.snapshot() == union.snapshot()

        # Every client observed every other client's entries, live.
        for me, got in fetched.items():
            for (other, i), entry in got.items():
                assert entry == make_result(other * 1000 + i)
        # A client only asks the server for keys it did not produce, so
        # cross-client reads are server-side hits by construction.
        expected_cross_reads = (
            self.N_CLIENTS * (self.N_CLIENTS - 1) * self.KEYS_PER_CLIENT
        )
        assert server.cache.hits >= expected_cross_reads
