"""The cache server's HTTP ``/metrics`` endpoint and `repro top`."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs import parse_prometheus
from repro.serve import AUTH_TOKEN_ENV, CacheClient, CacheServer

from .test_auth import TOKEN, raw_request
from .test_cache_server import make_result


@pytest.fixture
def http_server():
    with CacheServer(metrics_port=0) as srv:
        yield srv


def fetch(server, path):
    host, port = server.metrics_address
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=5) as r:
        return r.status, r.headers.get("Content-Type", ""), r.read()


class TestHTTPMetrics:
    def test_metrics_endpoint_serves_exposition(self, http_server):
        with CacheClient(http_server.address) as client:
            client.put("k", make_result(1))
            client.clear()
            client.get("k")
        status, ctype, body = fetch(http_server, "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        values = parse_prometheus(body.decode())
        assert values["cache_server_entries"] == 1
        assert values["cache_server_hits_total"] == 1

    def test_healthz(self, http_server):
        for path in ("/", "/healthz"):
            status, _, body = fetch(http_server, path)
            assert status == 200
            assert body == b"ok\n"

    def test_unknown_path_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(http_server, "/nope")
        assert excinfo.value.code == 404

    def test_no_metrics_port_no_endpoint(self):
        with CacheServer() as srv:
            assert srv.metrics_address is None

    def test_scrape_needs_no_token_but_counts_unauthorized(self, monkeypatch):
        """The HTTP endpoint is deliberately unauthenticated (aggregate
        numbers only — scrapers never hold the shared secret), and it
        exports the unauthorized counter that wire-op rejections bump."""
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        with CacheServer(auth_token=TOKEN, metrics_port=0) as srv:
            raw_request(srv.address, {"op": "ping"})  # rejected: no token
            raw_request(srv.address, {"op": "get", "key": "k", "token": "bad"})
            status, _, body = fetch(srv, "/metrics")
        assert status == 200
        values = parse_prometheus(body.decode())
        assert values["cache_server_unauthorized_total"] == 2

    def test_endpoint_survives_wire_traffic(self, http_server):
        """Scrapes interleaved with wire ops see monotone counters."""
        with CacheClient(http_server.address) as client:
            for i in range(3):
                client.put(f"k{i}", make_result(i))
            first = parse_prometheus(
                fetch(http_server, "/metrics")[2].decode()
            )
            client.put("k-more", make_result(9))
            second = parse_prometheus(
                fetch(http_server, "/metrics")[2].decode()
            )
        assert (
            second["cache_server_entries"]
            > first["cache_server_entries"] - 1
        )
        assert second["cache_server_entries"] == 4


class TestTopAuthPrecedence:
    def test_top_flag_token_beats_env(self, monkeypatch, capsys):
        """`repro top --auth-token` must win over REPRO_AUTH_TOKEN."""
        from repro.cli import main

        monkeypatch.setenv(AUTH_TOKEN_ENV, "stale-env-token")
        with CacheServer(auth_token=TOKEN) as srv:
            address = f"{srv.address[0]}:{srv.address[1]}"
            # Env token alone is wrong: connection is refused.
            with pytest.raises(SystemExit, match="authentication failed"):
                main(["top", address, "--once", "--no-clear"])
            # The flag token wins over the (wrong) env token.
            assert (
                main(
                    ["top", address, "--once", "--no-clear",
                     "--auth-token", TOKEN]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "first sample" in out

    def test_top_rejects_bad_address(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["top", "127.0.0.1:1", "--once"])  # nothing listens
