"""Cache-server auth (shared-secret token) and the metrics op."""

from __future__ import annotations

import json
import socket

import pytest

from repro import obs
from repro.obs import parse_prometheus
from repro.serve import (
    AUTH_TOKEN_ENV,
    CacheClient,
    CacheServer,
    CacheServerError,
)

from .test_cache_server import make_result

TOKEN = "tok-123"


@pytest.fixture
def auth_server(monkeypatch):
    # The client falls back to the env token, so tests must control it.
    monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
    with CacheServer(auth_token=TOKEN) as srv:
        yield srv


def raw_request(address, payload: dict) -> dict:
    with socket.create_connection(address) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        return json.loads(sock.makefile().readline())


class TestAuth:
    def test_missing_token_rejected_cleanly(self, auth_server):
        response = raw_request(auth_server.address, {"op": "ping"})
        assert response["ok"] is False
        assert response["unauthorized"] is True
        assert "authentication failed" in response["error"]
        assert AUTH_TOKEN_ENV in response["error"]  # remediation hint

    def test_wrong_token_rejected(self, auth_server):
        response = raw_request(
            auth_server.address, {"op": "ping", "token": "nope"}
        )
        assert response["ok"] is False
        assert response["unauthorized"] is True

    def test_client_without_token_fails_fast(self, auth_server):
        with pytest.raises(CacheServerError, match="authentication failed"):
            CacheClient(auth_server.address)

    def test_token_client_full_surface(self, auth_server):
        with CacheClient(auth_server.address, token=TOKEN) as client:
            assert client.get("k") is None
            client.put("k", make_result(1))
            assert client.get("k") == make_result(1)
            stats = client.server_stats()
            assert stats["size"] == 1

    def test_env_token_fallback(self, auth_server, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, TOKEN)
        with CacheClient(auth_server.address) as client:
            assert client.ping() == 0

    def test_explicit_token_beats_env(self, auth_server, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, "stale-env-token")
        with pytest.raises(CacheServerError, match="authentication failed"):
            CacheClient(auth_server.address)  # env token is wrong
        with CacheClient(auth_server.address, token=TOKEN) as client:
            assert client.ping() == 0

    def test_stats_and_metrics_ops_honor_auth(self, auth_server):
        for op in ("stats", "metrics"):
            response = raw_request(auth_server.address, {"op": op})
            assert response["ok"] is False, op
            assert response["unauthorized"] is True, op

    def test_unauthorized_counter_in_stats(self, auth_server):
        raw_request(auth_server.address, {"op": "ping"})
        raw_request(auth_server.address, {"op": "get", "key": "k"})
        with CacheClient(auth_server.address, token=TOKEN) as client:
            assert client.server_stats()["unauthorized"] == 2

    def test_open_server_ignores_tokens(self):
        with CacheServer() as server:  # no auth configured
            response = raw_request(
                server.address, {"op": "ping", "token": "anything"}
            )
            assert response["ok"] is True


class TestMetricsOp:
    def test_text_and_json_exposition(self):
        with CacheServer() as server:
            with CacheClient(server.address) as client:
                client.get("missing")
                client.put("k", make_result(1))
                client.clear()  # local-only: force the hit to the server
                client.get("k")
                payload = client.server_metrics()
        values = parse_prometheus(payload["text"])
        assert values["cache_server_hits_total"] == 1
        assert values["cache_server_misses_total"] == 1
        assert values["cache_server_entries"] == 1
        assert values['cache_server_requests_total{op="get"}'] == 2
        assert payload["json"]["metrics"]  # registry dump form

    def test_unauthorized_metric_exported(self, auth_server):
        raw_request(auth_server.address, {"op": "ping"})
        with CacheClient(auth_server.address, token=TOKEN) as client:
            payload = client.server_metrics()
        values = parse_prometheus(payload["text"])
        assert values["cache_server_unauthorized_total"] == 1

    def test_merges_global_registry_when_enabled(self):
        obs.reset()
        obs.enable()
        try:
            obs.metrics().counter("my_app_things_total").inc(5)
            with CacheServer() as server:
                with CacheClient(server.address) as client:
                    payload = client.server_metrics()
            values = parse_prometheus(payload["text"])
            assert values["my_app_things_total"] == 5
        finally:
            obs.reset()

    def test_client_latency_histograms_recorded(self):
        obs.reset()
        obs.enable()
        try:
            with CacheServer() as server:
                with CacheClient(server.address) as client:
                    client.get("missing")
                    client.put("k", make_result(1))
                    client.clear()  # local-only: force a server hit
                    client.get("k")
            registry = obs.metrics()
            gets = registry.get("cache_client_get_seconds")
            assert gets is not None and gets.count == 2
            assert registry.value("cache_client_gets_total", result="hit") == 1
            assert registry.value("cache_client_gets_total", result="miss") == 1
            puts = registry.get("cache_client_put_seconds")
            assert puts is not None and puts.count == 1
        finally:
            obs.reset()
