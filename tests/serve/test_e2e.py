"""End-to-end: a multi-workload DSE run through the evaluation service
is bit-identical to serial, with workers sharing cache hits mid-run."""

import pytest

from repro import WorkloadBuilder
from repro.core.strategy import OverlapMode
from repro.dse import DesignSpace, DSERunner, Scenario, WeightedWorkload
from repro.explore import Executor
from repro.mapping import SearchConfig

OBJECTIVES = ("energy", "latency")


def small_workload(name: str, x: int, y: int):
    b = WorkloadBuilder(name, channels=1, x=x, y=y)
    t = b.input()
    t = b.conv("L1", t, k=8, f=3, pad=1)
    t = b.conv("L2", t, k=16, f=3, pad=1)
    b.conv("L3", t, k=8, f=3, pad=1)
    return b.build()


@pytest.fixture(scope="module")
def space():
    return DesignSpace(
        accelerators=("meta_proto_like_df",),
        tile_x=(4, 16),
        tile_y=(4, 8),
        modes=tuple(OverlapMode),
        fuse_depths=(None,),
    )


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        members=(
            WeightedWorkload(workload=small_workload("wl_a", 48, 32), weight=2.0),
            WeightedWorkload(workload=small_workload("wl_b", 40, 24)),
        )
    )


@pytest.fixture(scope="module")
def config():
    return SearchConfig(lpf_limit=5, budget=60)


def run_dse(space, scenario, executor, seed=3):
    runner = DSERunner(
        space, scenario, objectives=OBJECTIVES, executor=executor, seed=seed
    )
    return runner.run("exhaustive")


class TestServiceBitIdentity:
    def test_multi_workload_dse_through_service(self, space, scenario, config):
        serial = run_dse(space, scenario, Executor(jobs=1, search_config=config))
        with Executor(jobs=2, backend="service", search_config=config) as ex:
            served = run_dse(space, scenario, ex)
            stats = ex.service.stats()

        # Bit-identical outcome: same frontier (same encoding, same
        # order), same per-generation stats, same hypervolume numbers.
        assert served.frontier.to_json() == serial.frontier.to_json()
        assert [s.to_json() for s in served.generations] == [
            s.to_json() for s in serial.generations
        ]
        assert served.evaluations == serial.evaluations

        # The acceptance bar for the live cache: at least one worker
        # was served an entry another worker produced *during* the run.
        # (A shard's client never re-requests keys it put or fetched,
        # so every server-side hit is a cross-worker share; the cache
        # started cold, so none of them came from a pre-warm.)
        assert stats["cache"]["hits"] >= 1

    def test_genetic_dse_through_service_matches_serial(
        self, space, scenario, config
    ):
        from repro.dse import GeneticSearch

        def strategy():
            return GeneticSearch(population=6, generations=2)

        serial = DSERunner(
            space,
            scenario,
            objectives=OBJECTIVES,
            executor=Executor(jobs=1, search_config=config),
            seed=11,
        ).run(strategy())
        with Executor(jobs=3, backend="service", search_config=config) as ex:
            served = DSERunner(
                space, scenario, objectives=OBJECTIVES, executor=ex, seed=11
            ).run(strategy())
        assert served.frontier.to_json() == serial.frontier.to_json()
        assert [s.to_json() for s in served.generations] == [
            s.to_json() for s in serial.generations
        ]
