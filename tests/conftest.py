"""Shared fixtures: small workloads and fast engines for testing."""

from __future__ import annotations

import pytest

from repro import DepthFirstEngine, WorkloadBuilder, get_accelerator
from repro.mapping import SearchConfig
from repro.obs import ledger


@pytest.fixture(autouse=True)
def _ledger_sandbox(tmp_path, monkeypatch):
    """Keep every test's run ledger in a tmp dir: CLI tests call
    ``main()`` directly and must not litter the repo with ``.repro/``."""
    monkeypatch.setenv(ledger.RUNS_DIR_ENV, str(tmp_path / "runs"))
    ledger.reset()
    yield
    ledger.reset()


@pytest.fixture(scope="session")
def meta_df():
    """The paper's main case-study architecture (Table I Idx 2)."""
    return get_accelerator("meta_proto_like_df")


@pytest.fixture(scope="session")
def meta_baseline():
    return get_accelerator("meta_proto_like")


def make_tiny_workload(x: int = 48, y: int = 32):
    """A 3-layer conv chain small enough for exhaustive-ish testing,
    mirroring Fig. 2(a)'s example structure."""
    b = WorkloadBuilder("tiny", channels=1, x=x, y=y)
    t = b.input()
    t = b.conv("L1", t, k=8, f=3, pad=1)
    t = b.conv("L2", t, k=16, f=3, pad=1)
    b.conv("L3", t, k=8, f=3, pad=1)
    return b.build()


def make_branchy_workload(x: int = 32, y: int = 32):
    """A residual-style workload exercising the Fig. 8 branch rule."""
    b = WorkloadBuilder("branchy", channels=8, x=x, y=y)
    t = b.input()
    t = b.conv("entry", t, k=8, f=3, pad=1)
    skip = t
    t = b.conv("c1", t, k=8, f=3, pad=1)
    t = b.conv("c2", t, k=8, f=3, pad=1)
    t = b.add("join", t, skip)
    b.conv("exit", t, k=8, f=3, pad=1)
    return b.build()


def make_strided_workload(x: int = 32, y: int = 32):
    """A chain with a stride-2 layer (downsampling geometry)."""
    b = WorkloadBuilder("strided", channels=4, x=x, y=y)
    t = b.input()
    t = b.conv("L1", t, k=8, f=3, pad=1)
    t = b.conv("L2", t, k=8, f=3, stride=2, pad=1)
    b.conv("L3", t, k=8, f=3, pad=1)
    return b.build()


@pytest.fixture
def tiny_workload():
    return make_tiny_workload()


@pytest.fixture
def branchy_workload():
    return make_branchy_workload()


@pytest.fixture
def strided_workload():
    return make_strided_workload()


@pytest.fixture(scope="session")
def fast_config():
    """A small search budget keeping the suite quick."""
    return SearchConfig(lpf_limit=5, budget=60)


@pytest.fixture
def tiny_engine(meta_df, fast_config):
    return DepthFirstEngine(meta_df, fast_config)
