"""CLI tests for the run ledger family (`repro runs ...`) and the
crash-robust `repro stats`."""

from __future__ import annotations

import json

import pytest

from repro.cli import _loss_fraction, main
from repro.obs import ledger

EVAL_ARGS = [
    "--accelerator", "meta_proto_like_df",
    "--workload", "mobilenet_v1",
    "--mode", "2",
    "--tilex", "14",
    "--tiley", "14",
    "--budget", "40",
    "--lpf-limit", "5",
]

DSE_ARGS = [
    "dse",
    "--workload", "mobilenet_v1",
    "--strategy", "exhaustive",
    "--objectives", "energy,latency",
    "--tilex", "14,28",
    "--tiley", "14",
    "--modes", "fully_cached",
    "--budget", "40",
    "--lpf-limit", "5",
]


def write_record(
    runs_dir,
    run_id,
    started,
    orderings=200.0,
    wall=2.0,
    hits=30,
    misses=10,
    hv=0.9,
    evals=50,
):
    """A ledger-record file crafted directly (the write path has its own
    tests; these exercise the CLI read/compare path)."""
    runs_dir.mkdir(parents=True, exist_ok=True)
    record = {
        "format": ledger.LEDGER_FORMAT_VERSION,
        "id": run_id,
        "command": "dse",
        "argv": ["dse", "--seed", "7"],
        "status": "ok",
        "started": started,
        "finished": started + wall,
        "wall_seconds": wall,
        "pid": 1,
        "host": "fixture",
        "versions": {"python": "3.x"},
        "result": {"hypervolume": hv, "evaluations": evals,
                   "frontier_size": 4, "epsilon": 0.1},
        "convergence": [
            {"index": 0, "hypervolume": hv / 2, "evaluations": evals // 2,
             "epsilon": 0.5, "frontier_size": 2, "proposed": 10,
             "evaluated": 10, "cached": 0},
            {"index": 1, "hypervolume": hv, "evaluations": evals,
             "epsilon": 0.1, "frontier_size": 4, "proposed": 10,
             "evaluated": 5, "cached": 5},
        ],
        "metrics": {
            "metrics": [
                {"name": "loma_orderings_evaluated_total", "kind": "counter",
                 "labels": [], "data": orderings},
                {"name": "mapping_cache_gets_total", "kind": "counter",
                 "labels": [["result", "hit"]], "data": hits},
                {"name": "mapping_cache_gets_total", "kind": "counter",
                 "labels": [["result", "miss"]], "data": misses},
            ]
        },
    }
    (runs_dir / f"{run_id}.json").write_text(json.dumps(record))
    return record


class TestLedgerFromCLI:
    def test_evaluate_leaves_ok_record(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(EVAL_ARGS + ["--runs-dir", str(runs)]) == 0
        records = ledger.list_runs(runs)
        assert len(records) == 1
        record = records[0]
        assert record["status"] == "ok"
        assert record["command"] == "evaluate"
        assert record["manifest"]["workload"] == "mobilenet_v1"
        assert record["manifest"]["accelerator_fingerprints"]
        assert record["result"]["energy_mj"] > 0
        assert record["wall_seconds"] > 0
        capsys.readouterr()

        # `runs show` renders it.
        assert main(["runs", "show", "--runs-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert f"run {record['id']} [ok]" in out
        assert "key metrics:" in out

    def test_dse_records_convergence_series(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(DSE_ARGS + ["--runs-dir", str(runs)]) == 0
        (record,) = ledger.list_runs(runs)
        assert record["status"] == "ok"
        assert record["command"] == "dse"
        assert record["result"]["evaluations"] == 2
        assert record["convergence"]
        assert all("hypervolume" in p for p in record["convergence"])
        assert all("evaluations" in p for p in record["convergence"])
        capsys.readouterr()

        assert main(["runs", "show", record["id"][:-2] or record["id"],
                     "--runs-dir", str(runs), "--tail", "2"]) == 0
        out = capsys.readouterr().out
        assert "convergence" in out

    def test_crashed_dse_leaves_crashed_record(self, tmp_path, capsys):
        """A run that dies mid-flight must still be in the ledger — the
        whole point of write-at-begin."""
        runs = tmp_path / "runs"
        corrupt = tmp_path / "ckpt.json"
        corrupt.write_text("{definitely not a checkpoint")
        with pytest.raises(SystemExit, match="not a DSE checkpoint"):
            main(DSE_ARGS + ["--runs-dir", str(runs),
                             "--checkpoint", str(corrupt)])
        (record,) = ledger.list_runs(runs)
        assert record["status"] == "crashed"
        assert "not a DSE checkpoint" in record["error"]
        capsys.readouterr()

        assert main(["runs", "show", "latest", "--runs-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "[crashed]" in out
        assert "error:" in out

    def test_telemetry_on_embeds_metrics_dump(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        prom = tmp_path / "m.prom"
        assert main(EVAL_ARGS + ["--runs-dir", str(runs),
                                 "--metrics", str(prom)]) == 0
        (record,) = ledger.list_runs(runs)
        names = {m["name"] for m in record["metrics"]["metrics"]}
        assert "loma_orderings_evaluated_total" in names
        assert ledger.key_metrics(record)["orderings_per_s"] > 0
        capsys.readouterr()

    def test_no_ledger_flag_and_env(self, tmp_path, monkeypatch, capsys):
        runs = tmp_path / "runs"
        assert main(EVAL_ARGS + ["--runs-dir", str(runs), "--no-ledger"]) == 0
        assert ledger.list_runs(runs) == []
        monkeypatch.setenv(ledger.LEDGER_ENV, "0")
        assert main(EVAL_ARGS + ["--runs-dir", str(runs)]) == 0
        assert ledger.list_runs(runs) == []
        capsys.readouterr()

    def test_unwritable_runs_dir_warns_and_continues(self, tmp_path, capsys):
        """A broken ledger location must never break the run itself."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the runs dir should go")
        assert main(EVAL_ARGS + ["--runs-dir", str(blocker)]) == 0
        captured = capsys.readouterr()
        assert "warning: run ledger disabled" in captured.err
        assert "on meta_proto_like_df" in captured.out  # run completed

    def test_runs_dir_env_is_honored(self, tmp_path, monkeypatch, capsys):
        runs = tmp_path / "env-runs"
        monkeypatch.setenv(ledger.RUNS_DIR_ENV, str(runs))
        assert main(EVAL_ARGS) == 0
        assert len(ledger.list_runs(runs)) == 1
        capsys.readouterr()


class TestRunsCLI:
    def test_list_and_gc(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        for i in range(4):
            write_record(runs, f"run-{i}", 1000.0 + i)
        assert main(["runs", "list", "--runs-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "run-0" in out and "run-3" in out

        assert main(["runs", "gc", "--keep", "2", "--dry-run",
                     "--runs-dir", str(runs)]) == 0
        assert "would remove" in capsys.readouterr().out
        assert len(ledger.list_runs(runs)) == 4

        assert main(["runs", "gc", "--keep", "2",
                     "--runs-dir", str(runs)]) == 0
        assert "removed 2 run record(s)" in capsys.readouterr().out
        assert [r["id"] for r in ledger.list_runs(runs)] == ["run-2", "run-3"]

    def test_list_empty_ledger(self, tmp_path, capsys):
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "x")]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show_unknown_ref_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no run matching"):
            main(["runs", "show", "zzz", "--runs-dir", str(tmp_path)])

    def test_diff(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        write_record(runs, "base", 1000.0, orderings=200.0, hv=0.9)
        write_record(runs, "curr", 2000.0, orderings=300.0, hv=0.95)
        assert main(["runs", "diff", "base", "curr",
                     "--runs-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "curr" in out
        assert "+50.0%" in out  # orderings 200 -> 300

    def test_regress_passes_against_identical_baseline(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        write_record(runs, "base", 1000.0)
        write_record(runs, "curr", 2000.0)
        assert main(["runs", "regress", "--baseline", "base",
                     "--runs-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_regress_fails_on_injected_throughput_regression(
        self, tmp_path, capsys
    ):
        runs = tmp_path / "runs"
        write_record(runs, "base", 1000.0, orderings=200.0)
        # Same wall-clock, 100x fewer orderings: a 99% throughput drop.
        write_record(runs, "curr", 2000.0, orderings=2.0)
        assert main(["runs", "regress", "--baseline", "base",
                     "--runs-dir", str(runs)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "orderings_per_s" in out

    def test_regress_hv_skip_on_budget_mismatch(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        write_record(runs, "base", 1000.0, hv=0.9, evals=50)
        write_record(runs, "curr", 2000.0, hv=0.2, evals=99)
        assert main(["runs", "regress", "--baseline", "base",
                     "--runs-dir", str(runs)]) == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_regress_threshold_flags(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        write_record(runs, "base", 1000.0, orderings=200.0)
        write_record(runs, "curr", 2000.0, orderings=180.0)  # -10%
        assert main(["runs", "regress", "--baseline", "base",
                     "--max-slowdown", "0.05",
                     "--runs-dir", str(runs)]) == 1
        capsys.readouterr()

    def test_regress_bench_files(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        write_record(runs, "base", 1000.0)
        write_record(runs, "curr", 2000.0)
        point = {
            "workload": "fsrcnn",
            "accelerator": "meta_proto_like_df",
            "batch": {"orderings_per_s": 100.0},
            "speedup": 8.0,
        }
        baseline = tmp_path / "bench_base.json"
        baseline.write_text(json.dumps({"points": [point]}))
        slow = dict(point, batch={"orderings_per_s": 5.0})
        current = tmp_path / "bench_curr.json"
        current.write_text(json.dumps({"points": [slow]}))

        assert main(["runs", "regress", "--baseline", "base",
                     "--runs-dir", str(runs),
                     "--bench", str(baseline),
                     "--bench-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["runs", "regress", "--baseline", "base",
                     "--runs-dir", str(runs),
                     "--bench", str(current),
                     "--bench-baseline", str(baseline)]) == 1
        assert "batch_orderings_per_s" in capsys.readouterr().out

    def test_loss_fraction_validator(self):
        assert _loss_fraction("0") == 0.0
        assert _loss_fraction("0.25") == 0.25
        for bad in ("1", "1.5", "-0.1", "nan", "junk"):
            with pytest.raises(Exception):
                _loss_fraction(bad)


class TestStatsRobustness:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="No such file"):
            main(["stats", str(tmp_path / "nope.jsonl")])

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "trace.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="empty telemetry file"):
            main(["stats", str(empty)])
        blank = tmp_path / "blank.jsonl"
        blank.write_text("  \n\n")
        with pytest.raises(SystemExit, match="empty telemetry file"):
            main(["stats", str(blank)])

    def test_truncated_trace_reports_best_effort(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(EVAL_ARGS + ["--trace", str(trace), "--no-ledger"]) == 0
        capsys.readouterr()
        # Cut the final line mid-record, as a crash would.
        text = trace.read_text().rstrip("\n")
        trace.write_text(text[: len(text) - 20] + "\n")
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "warning: skipped 1 malformed line(s)" in out
        assert "truncated by a crashed run?" in out

    def test_garbage_file_mentions_unparseable_lines(self, tmp_path):
        garbage = tmp_path / "junk.txt"
        garbage.write_text('{"half": \n{"also half": \n')
        with pytest.raises(SystemExit, match="unparseable line"):
            main(["stats", str(garbage)])
