"""Property-based invariants of the end-to-end depth-first engine."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import DepthFirstEngine, DFStrategy, OverlapMode, get_accelerator
from repro.mapping import SearchConfig
from repro.workloads.builder import WorkloadBuilder

_ENGINE = DepthFirstEngine(
    get_accelerator("meta_proto_like_df"), SearchConfig(lpf_limit=4, budget=30)
)


def _workload(depth: int, channels: int, x: int, y: int):
    b = WorkloadBuilder(f"prop{depth}x{channels}", channels=1, x=x, y=y)
    t = b.input()
    for i in range(depth):
        t = b.conv(f"L{i}", t, k=channels, f=3, pad=1)
    return b.build()


common = dict(
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
    max_examples=12,
)


@settings(**common)
@given(
    depth=st.integers(min_value=1, max_value=4),
    channels=st.sampled_from([2, 8, 24]),
    tx=st.integers(min_value=1, max_value=40),
    ty=st.integers(min_value=1, max_value=24),
    mode=st.sampled_from(list(OverlapMode)),
)
def test_costs_are_finite_and_positive(depth, channels, tx, ty, mode):
    wl = _workload(depth, channels, 40, 24)
    r = _ENGINE.evaluate(wl, DFStrategy(tile_x=tx, tile_y=ty, mode=mode))
    assert r.energy_pj > 0
    assert r.latency_cycles > 0
    assert r.mac_count >= wl.total_mac_count * 0.99
    for t in r.total.traffic.values():
        assert t.reads_elems >= 0
        assert t.writes_elems >= 0
        assert t.energy_pj >= 0


@settings(**common)
@given(
    tx=st.integers(min_value=1, max_value=40),
    ty=st.integers(min_value=1, max_value=24),
)
def test_fully_cached_never_more_macs_than_recompute(tx, ty):
    wl = _workload(3, 8, 40, 24)
    rec = _ENGINE.evaluate(
        wl, DFStrategy(tile_x=tx, tile_y=ty, mode=OverlapMode.FULLY_RECOMPUTE)
    )
    cac = _ENGINE.evaluate(
        wl, DFStrategy(tile_x=tx, tile_y=ty, mode=OverlapMode.FULLY_CACHED)
    )
    assert cac.mac_count <= rec.mac_count


@settings(**common)
@given(
    tx=st.integers(min_value=1, max_value=40),
    ty=st.integers(min_value=1, max_value=24),
)
def test_latency_at_least_ideal_compute(tx, ty):
    wl = _workload(2, 8, 40, 24)
    r = _ENGINE.evaluate(
        wl, DFStrategy(tile_x=tx, tile_y=ty, mode=OverlapMode.FULLY_CACHED)
    )
    ideal = wl.total_mac_count / _ENGINE.accel.pe_count
    assert r.latency_cycles >= ideal


@settings(**common)
@given(mode=st.sampled_from(list(OverlapMode)))
def test_energy_decomposition_consistent(mode):
    wl = _workload(3, 8, 40, 24)
    r = _ENGINE.evaluate(wl, DFStrategy(tile_x=8, tile_y=8, mode=mode))
    total = r.total
    assert abs(
        total.energy_pj - (total.mac_energy_pj + total.memory_energy_pj)
    ) <= 1e-6 * total.energy_pj
