"""Integration tests pinning the paper's qualitative findings.

These use the real FSRCNN workload and Table I architectures with a
reduced mapping-search budget, and assert the *shapes* the paper reports:
mode orderings, U-shaped tile-size curves, the SL-vs-DF gain, and the
TPU-like weight-buffer story.
"""

import pytest

from repro import (
    DepthFirstEngine,
    DFStrategy,
    OverlapMode,
    evaluate_layer_by_layer,
    evaluate_single_layer,
    get_accelerator,
    get_workload,
)
from repro.mapping import SearchConfig

CONFIG = SearchConfig(lpf_limit=6, budget=150)


@pytest.fixture(scope="module")
def fsrcnn():
    return get_workload("fsrcnn")


@pytest.fixture(scope="module")
def engine():
    return DepthFirstEngine(get_accelerator("meta_proto_like_df"), CONFIG)


@pytest.fixture(scope="module")
def mode_results(engine, fsrcnn):
    return {
        mode: engine.evaluate(fsrcnn, DFStrategy(tile_x=60, tile_y=72, mode=mode))
        for mode in OverlapMode
    }


class TestCaseStudy1Shapes:
    def test_mode_energy_ordering(self, mode_results):
        """Fig. 12 observation 2: fully-cached <= H-cached <= recompute."""
        e = {m: r.energy_pj for m, r in mode_results.items()}
        assert e[OverlapMode.FULLY_CACHED] <= e[OverlapMode.H_CACHED_V_RECOMPUTE]
        assert e[OverlapMode.H_CACHED_V_RECOMPUTE] <= e[OverlapMode.FULLY_RECOMPUTE]

    def test_energy_near_paper_anchor(self, mode_results):
        """Paper reports ~2.2-2.3 mJ at (60,72); we expect the same order
        of magnitude (our energy unit costs are analytically derived)."""
        for r in mode_results.values():
            assert 0.5 < r.energy_pj / 1e9 < 10.0

    def test_mac_count_ordering(self, mode_results):
        """Fig. 13: recompute does more MACs; fully-cached does none extra."""
        m = {k: r.mac_count for k, r in mode_results.items()}
        assert m[OverlapMode.FULLY_RECOMPUTE] > m[OverlapMode.FULLY_CACHED]
        assert m[OverlapMode.FULLY_CACHED] == pytest.approx(6.46e9, rel=0.05)

    def test_u_shape_along_diagonal(self, engine, fsrcnn):
        """Fig. 12 observation 1: both tiny and huge tiles are sub-optimal."""
        points = [(1, 1), (16, 18), (960, 540)]
        energies = [
            engine.evaluate(
                fsrcnn, DFStrategy(tile_x=tx, tile_y=ty, mode=OverlapMode.FULLY_CACHED)
            ).energy_pj
            for tx, ty in points
        ]
        assert energies[1] < energies[0]
        assert energies[1] < energies[2]

    def test_lbl_corner_mode_independent(self, engine, fsrcnn):
        """Fig. 12: the (960,540) corner is LBL; modes cannot differ."""
        e = {
            mode: engine.evaluate(
                fsrcnn, DFStrategy(tile_x=960, tile_y=540, mode=mode)
            ).energy_pj
            for mode in OverlapMode
        }
        values = list(e.values())
        assert max(values) / min(values) < 1.001


class TestCaseStudy2Shapes:
    def test_df_gain_over_sl_activation_dominant(self, engine, fsrcnn):
        """Fig. 16: fully-cached 4x72 gains ~10x over SL on FSRCNN."""
        sl = evaluate_single_layer(engine, fsrcnn)
        df = engine.evaluate(
            fsrcnn, DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)
        )
        gain = sl.energy_pj / df.energy_pj
        assert gain > 4.0

    def test_weight_dominant_prefers_lbl_over_small_tiles(self):
        """Fig. 16: on ResNet18 the FSRCNN-best strategy underperforms."""
        engine = DepthFirstEngine(get_accelerator("meta_proto_like_df"), CONFIG)
        wl = get_workload("resnet18")
        lbl = evaluate_layer_by_layer(engine, wl)
        df = engine.evaluate(
            wl, DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)
        )
        assert df.energy_pj > lbl.energy_pj * 0.9  # no big win, typically a loss


class TestCaseStudy3Shapes:
    def test_tpu_like_cannot_profit_from_df(self, fsrcnn):
        """Fig. 17: the TPU-like baseline (no on-chip weight buffer) is the
        one architecture where DF does not beat LBL."""
        engine = DepthFirstEngine(get_accelerator("tpu_like"), CONFIG)
        lbl = evaluate_layer_by_layer(engine, fsrcnn)
        df = engine.evaluate(
            fsrcnn, DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)
        )
        assert df.energy_pj > lbl.energy_pj

    def test_tpu_df_variant_fixes_it(self, fsrcnn):
        """Fig. 17: adding a weight GB makes DF far better than LBL."""
        engine = DepthFirstEngine(get_accelerator("tpu_like_df"), CONFIG)
        lbl = evaluate_layer_by_layer(engine, fsrcnn)
        df = engine.evaluate(
            fsrcnn, DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)
        )
        assert lbl.energy_pj / df.energy_pj > 3.0

    def test_df_variants_no_worse_on_df(self, fsrcnn):
        """Fig. 17: DF-friendly variants are at least as good as their
        baselines when running DF schedules."""
        strategy = DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)
        for base in ("meta_proto_like", "edge_tpu_like"):
            e_base = DepthFirstEngine(get_accelerator(base), CONFIG).evaluate(
                fsrcnn, strategy
            )
            e_df = DepthFirstEngine(get_accelerator(base + "_df"), CONFIG).evaluate(
                fsrcnn, strategy
            )
            assert e_df.energy_pj <= e_base.energy_pj * 1.05


class TestFig6TileTypes:
    def test_tile_type_counts_small(self, engine, fsrcnn):
        """Fig. 6: tile-type counts stay in the single digits, and the
        (60,72) grid is 16x8 = 128 tiles with a 36-row remainder."""
        r = engine.evaluate(
            fsrcnn,
            DFStrategy(tile_x=60, tile_y=72, mode=OverlapMode.FULLY_RECOMPUTE),
        )
        tiling = r.stacks[0].tiling
        assert tiling.grid_cols == 16
        assert tiling.grid_rows == 8
        assert tiling.tile_count == 128
        assert 3 <= len(tiling.tile_types) <= 9

    def test_first_tile_count_is_one(self, mode_results):
        for r in mode_results.values():
            firsts = [
                t for t in r.stacks[0].tiling.tile_types if t.is_first_tile
            ]
            assert len(firsts) == 1 and firsts[0].count == 1
