"""Integration tests of the DepFiN validation path and cross-stack
behaviours that the figure benchmarks exercise at larger scale."""

import pytest

from repro import (
    DepthFirstEngine,
    DFStrategy,
    OverlapMode,
    evaluate_layer_by_layer,
    get_accelerator,
    get_workload,
)
from repro.mapping import SearchConfig

CONFIG = SearchConfig(lpf_limit=5, budget=80)


class TestDepfinValidation:
    @pytest.fixture(scope="class")
    def engine(self):
        return DepthFirstEngine(get_accelerator("depfin_like"), CONFIG)

    def test_reference_net_runs_depth_first(self, engine):
        wl = get_workload("reference")
        r = engine.evaluate(
            wl, DFStrategy(tile_x=128, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        # DepFiN's preferred 128-pixel row tiles fuse the whole net.
        assert len(r.stacks) == 1
        assert r.mac_count == pytest.approx(wl.total_mac_count)

    def test_fixed_mapping_evaluation(self, engine):
        """The validation methodology fixes the temporal mapping to match
        the chip; the fixed-mapping path must cost no less than the
        searched optimum."""
        wl = get_workload("reference")
        layer = wl.topological_layers()[1].scaled_to_tile(128, 8)
        searched = engine.mapper.search(layer, engine.accel)
        ordering = list(searched.mapping.loops)
        fixed = engine.mapper.evaluate_fixed(layer, engine.accel, ordering)
        assert fixed.cost.energy_pj == pytest.approx(searched.cost.energy_pj)


class TestCrossStackResiduals:
    def test_resnet_per_layer_stacks_cross_stack_skip(self):
        """When residual blocks do not fuse (SL/LBL), the add layer's
        skip input crosses stack boundaries; the engine must route it
        from the producing stack's output location."""
        engine = DepthFirstEngine(get_accelerator("meta_proto_like_df"), CONFIG)
        wl = get_workload("resnet18")
        r = evaluate_layer_by_layer(engine, wl)
        assert r.energy_pj > 0
        assert len(r.stacks) == len(wl)

    def test_fallback_never_crashes_on_tight_arches(self):
        """Tiny-buffer architectures exercise the allocation fallback."""
        engine = DepthFirstEngine(get_accelerator("tesla_npu_like"), CONFIG)
        wl = get_workload("mobilenet_v1")
        r = engine.evaluate(
            wl, DFStrategy(tile_x=8, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        assert r.energy_pj > 0


class TestObjectiveConsistency:
    def test_edp_between_energy_and_latency_optima(self):
        from repro.core.optimizer import best_point, sweep
        from repro.core.strategy import OverlapMode as OM

        engine = DepthFirstEngine(get_accelerator("meta_proto_like_df"), CONFIG)
        wl = get_workload("mobilenet_v1")
        points = sweep(engine, wl, ((4, 4), (14, 14), (56, 56)), (OM.FULLY_CACHED,))
        e = best_point(points, "energy")
        l = best_point(points, "latency")
        d = best_point(points, "edp")
        assert d.result.edp <= e.result.edp * 1.0001
        assert d.result.edp <= l.result.edp * 1.0001
