"""Unit tests for paper-style text reports."""

from repro import DFStrategy, OverlapMode, get_accelerator
from repro.analysis.heatmap import energy_mj, render_heatmap, sweep_grid
from repro.analysis.report import (
    strategy_comparison,
    table1_architectures,
    table1_workloads,
    table2_factors,
    top_level_map,
)
from repro.core.optimizer import sweep
from repro.workloads.stats import workload_stats

from ..conftest import make_tiny_workload


class TestTables:
    def test_table1_workloads_renders(self):
        stats = [workload_stats(make_tiny_workload())]
        text = table1_workloads(stats)
        assert "tiny" in text and "Weights" in text

    def test_table1_architectures_renders(self):
        text = table1_architectures([get_accelerator("meta_proto_like_df")])
        assert "meta_proto_like_df" in text
        assert "1024 MACs" in text

    def test_table2_has_all_frameworks(self):
        text = table2_factors()
        for name in ("DNNVM", "ConvFusion", "Optimus", "DNNFuser", "DeFiNES"):
            assert name in text


class TestTopLevelMap:
    def test_renders_per_tile_type(self, tiny_engine, tiny_workload):
        r = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        text = top_level_map(tiny_engine.accel, r.stacks[0])
        assert "tile type 0" in text
        assert "first tile" in text
        assert "L1" in text


class TestHeatmap:
    def test_grid_and_render(self, tiny_engine, tiny_workload):
        tiles = ((8, 8), (16, 16))
        points = sweep(tiny_engine, tiny_workload, tiles, (OverlapMode.FULLY_CACHED,))
        grid = sweep_grid(points, OverlapMode.FULLY_CACHED, (8, 16), (8, 16), energy_mj)
        # Diagonal cells exist, off-diagonal are NaN.
        assert grid[0][0] == grid[0][0]  # (8,8) present
        assert grid[1][0] != grid[1][0]  # (8,16)? not swept -> NaN
        text = render_heatmap(grid, (8, 16), (8, 16), "Energy (mJ)")
        assert "Energy (mJ)" in text


class TestStrategyComparison:
    def test_gain_column(self, tiny_engine, tiny_workload):
        a = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=48, tile_y=32, mode=OverlapMode.FULLY_CACHED)
        )
        b = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        text = strategy_comparison([a, b])
        assert "vs first" in text
        assert "1.00x" in text
