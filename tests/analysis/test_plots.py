"""Plot tests: the pure series extraction everywhere, the matplotlib
renderers only where the backend exists (graceful skip otherwise)."""

import warnings

import pytest

from repro.analysis import (
    HAVE_MATPLOTLIB,
    convergence_series,
    frontier_series,
    plot_convergence,
    plot_dse_summary,
    plot_frontier,
)
from repro.core.strategy import OverlapMode
from repro.dse import DesignPoint, GenerationStats, ParetoFrontier


def make_point(tile: int) -> DesignPoint:
    return DesignPoint(
        accelerator="meta_proto_like_df",
        tile_x=tile,
        tile_y=tile,
        mode=OverlapMode.FULLY_CACHED,
    )


@pytest.fixture
def frontier_2d():
    frontier = ParetoFrontier(("energy", "latency"))
    frontier.offer(make_point(4), (10.0, 1.0))
    frontier.offer(make_point(8), (5.0, 2.0))
    return frontier


@pytest.fixture
def generations():
    return [
        GenerationStats(
            index=0, proposed=4, evaluated=4, cached=0, frontier_size=2,
            hypervolume=None, epsilon=None,
        ),
        GenerationStats(
            index=1, proposed=4, evaluated=2, cached=2, frontier_size=3,
            hypervolume=12.5, epsilon=3.0,
        ),
        GenerationStats(
            index=2, proposed=4, evaluated=1, cached=3, frontier_size=3,
            hypervolume=14.0, epsilon=1.5,
        ),
    ]


class TestFrontierSeries:
    def test_two_objectives(self, frontier_2d):
        series = frontier_series(frontier_2d)
        assert series["x_label"] == "energy"
        assert series["y_label"] == "latency"
        assert sorted(
            zip(series["feasible"]["x"], series["feasible"]["y"])
        ) == [(5.0, 2.0), (10.0, 1.0)]
        assert series["infeasible"]["x"] == []
        assert len(series["feasible"]["labels"]) == 2

    def test_all_infeasible_frontier_splits_out(self):
        """Infeasible entries survive on the frontier only while no
        feasible design exists; the series marks them separately."""
        frontier = ParetoFrontier(("energy", "latency"))
        frontier.offer(make_point(4), (10.0, 1.0), violation=1.0)
        frontier.offer(make_point(8), (5.0, 2.0), violation=1.0)
        series = frontier_series(frontier)
        assert series["feasible"]["x"] == []
        assert sorted(
            zip(series["infeasible"]["x"], series["infeasible"]["y"])
        ) == [(5.0, 2.0), (10.0, 1.0)]

    def test_single_objective_uses_rank_axis(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(make_point(4), (3.0,))
        series = frontier_series(frontier)
        assert series["x_label"] == "frontier rank"
        assert series["y_label"] == "energy"
        assert series["feasible"]["x"] == [0]
        assert series["feasible"]["y"] == [3.0]

    def test_empty_frontier(self):
        series = frontier_series(ParetoFrontier(("energy", "latency")))
        assert series["feasible"]["x"] == []
        assert series["infeasible"]["x"] == []


class TestConvergenceSeries:
    def test_arrays_align_with_generations(self, generations):
        series = convergence_series(generations)
        assert series["index"] == [0, 1, 2]
        assert series["hypervolume"] == [None, 12.5, 14.0]
        assert series["epsilon"] == [None, 3.0, 1.5]
        assert series["has_hypervolume"] and series["has_epsilon"]

    def test_untracked_metrics_flagged(self):
        stats = [
            GenerationStats(
                index=0, proposed=1, evaluated=1, cached=0, frontier_size=1
            )
        ]
        series = convergence_series(stats)
        assert not series["has_hypervolume"]
        assert not series["has_epsilon"]

    def test_empty(self):
        series = convergence_series([])
        assert series["index"] == []
        assert not series["has_epsilon"]


@pytest.mark.skipif(
    HAVE_MATPLOTLIB, reason="covers the matplotlib-absent degradation"
)
class TestGracefulSkip:
    def test_all_plots_warn_and_return_none(
        self, frontier_2d, generations, tmp_path
    ):
        target = tmp_path / "plot.png"
        for call in (
            lambda: plot_frontier(frontier_2d, target),
            lambda: plot_convergence(generations, target),
            lambda: plot_dse_summary(frontier_2d, generations, target),
        ):
            with pytest.warns(UserWarning, match="matplotlib is not installed"):
                assert call() is None
        assert not target.exists()


@pytest.mark.skipif(
    not HAVE_MATPLOTLIB, reason="needs the optional matplotlib backend"
)
class TestRendering:
    def test_files_are_written(self, frontier_2d, generations, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no skip-warnings expected
            assert plot_frontier(
                frontier_2d, tmp_path / "frontier.png"
            ).exists()
            assert plot_convergence(
                generations, tmp_path / "conv.png"
            ).exists()
            assert plot_dse_summary(
                frontier_2d, generations, tmp_path / "summary.png"
            ).exists()
