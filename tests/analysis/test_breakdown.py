"""Unit tests for the Fig. 14-style access breakdowns."""

import pytest

from repro import DFStrategy, OverlapMode
from repro.analysis.breakdown import (
    access_breakdown,
    energy_components,
    tier_of,
    weight_vs_activation_energy,
)


@pytest.fixture
def result(tiny_engine, tiny_workload):
    return tiny_engine.evaluate(
        tiny_workload, DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
    )


class TestTierMapping:
    def test_known_tiers(self, meta_df):
        assert tier_of(meta_df, "LB_IO") == "LB"
        assert tier_of(meta_df, "GB_W") == "GB"
        assert tier_of(meta_df, "W_reg") == "Reg"
        assert tier_of(meta_df, "DRAM") == "DRAM"


class TestAccessBreakdown:
    def test_totals_match_cost(self, meta_df, result):
        bd = access_breakdown(meta_df, result.total)
        assert bd.total() == pytest.approx(result.total.accesses())

    def test_category_split_complete(self, meta_df, result):
        bd = access_breakdown(meta_df, result.total)
        by_cat = bd.by_category()
        assert sum(by_cat.values()) == pytest.approx(bd.total())
        assert by_cat["activation"] > 0
        assert by_cat["weight"] > 0

    def test_by_tier_filters(self, meta_df, result):
        bd = access_breakdown(meta_df, result.total)
        all_tiers = bd.by_tier()
        act_tiers = bd.by_tier("activation")
        for tier, count in act_tiers.items():
            assert count <= all_tiers[tier] + 1e-9

    def test_energy_by_category_positive(self, meta_df, result):
        bd = access_breakdown(meta_df, result.total)
        assert bd.energy_by_category()["activation"] > 0


class TestEnergyComponents:
    def test_components_sum_to_total(self, meta_df, result):
        parts = energy_components(meta_df, result.total)
        assert sum(parts.values()) == pytest.approx(result.total.energy_pj)

    def test_weight_vs_activation_sums_to_memory(self, result):
        split = weight_vs_activation_energy(result.total)
        assert sum(split.values()) == pytest.approx(result.total.memory_energy_pj)
