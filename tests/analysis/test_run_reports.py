"""Rendering for the run-ledger reports (`repro runs list|show|diff`
and the regression verdict table)."""

from __future__ import annotations

from repro.analysis.report import (
    regress_report,
    run_diff_report,
    run_report,
    runs_table,
)
from repro.obs.regress import OK, REGRESSED, SKIPPED, Check


def record(run_id="r1", status="ok", **extra):
    base = {
        "id": run_id,
        "status": status,
        "argv": ["dse", "--seed", "7"],
        "started": 1700000000.0,
        "wall_seconds": 2.0,
        "pid": 42,
        "host": "box",
        "versions": {"python": "3.11.1", "numpy": "1.26.0"},
        "manifest": {
            "workload": "fsrcnn",
            "seed": 7,
            "cache": None,  # None-valued manifest entries are elided
            "accelerator_fingerprints": {"meta_proto_like_df": "abc123"},
        },
        "result": {
            "hypervolume": 0.9,
            "evaluations": 50,
            "epsilon": 0.1,
            "frontier_size": 4,
        },
        "convergence": [
            {"index": i, "evaluations": 10 * (i + 1), "frontier_size": i + 1,
             "hypervolume": 0.3 * (i + 1), "epsilon": 0.5 / (i + 1)}
            for i in range(3)
        ],
    }
    base.update(extra)
    return base


class TestRunsTable:
    def test_empty(self):
        assert runs_table([]) == "no runs recorded"

    def test_rows_and_truncation(self):
        records = [record(f"run-{i}") for i in range(6)]
        text = runs_table(records, limit=4)
        assert "run-5" in text and "run-2" in text
        assert "run-0" not in text
        assert "... 2 older run(s)" in text

    def test_stub_row_renders_dashes(self):
        text = runs_table([{"id": "junk", "status": "unreadable"}])
        assert "junk" in text and "unreadable" in text
        assert " - " in text


class TestRunReport:
    def test_full_record(self):
        text = run_report(record())
        assert text.startswith("run r1 [ok]")
        assert "argv:     repro dse --seed 7" in text
        assert "box (pid 42)" in text
        assert "python 3.11.1" in text
        assert "workload:" in text and "fsrcnn" in text
        assert "cache:" not in text  # None manifest values elided
        assert "accelerator:      meta_proto_like_df [abc123]" in text
        assert "key metrics:" in text
        assert "hypervolume" in text

    def test_convergence_tail(self):
        text = run_report(record(), tail=2)
        assert "convergence (3 generation(s), last 2 shown):" in text
        assert "\n     0 " not in text  # oldest generation dropped

    def test_crashed_record(self):
        text = run_report(
            record(status="crashed", error="ValueError: boom",
                   result=None, convergence=[])
        )
        assert "[crashed]" in text
        assert "error:    ValueError: boom" in text

    def test_minimal_record(self):
        assert run_report({}) == "run ? [?]\n  started:  -"


class TestRunDiffReport:
    def test_deltas(self):
        base = record("base")
        curr = record("curr", wall_seconds=1.0)
        text = run_diff_report(base, curr)
        assert "baseline: base [ok]" in text
        assert "current:  curr [ok]" in text
        assert "-50.0%" in text  # wall clock halved

    def test_missing_side_renders_dash(self):
        text = run_diff_report(record(), {"id": "bare", "status": "ok"})
        assert "delta" in text
        lines = [l for l in text.splitlines() if l.startswith("hypervolume")]
        assert lines and lines[0].rstrip().endswith("-")


class TestRegressReport:
    def test_pass_and_fail_summaries(self):
        ok = Check("orderings_per_s", 100.0, 99.0, ">= x", OK)
        skip = Check("hypervolume", None, None, ">= y", SKIPPED,
                     "budgets differ (50 vs 80)")
        assert "PASS: no regressions in 2 check(s)" in regress_report(
            [ok, skip]
        )
        bad = Check("cache_hit_rate", 0.9, 0.1, ">= z", REGRESSED)
        text = regress_report([ok, bad])
        assert "FAIL: 1 regression(s): cache_hit_rate" in text
        assert "REGRESSED" in text

    def test_notes_rendered(self):
        skip = Check("hypervolume", None, None, ">= y", SKIPPED,
                     "baseline run has no hypervolume")
        assert "(baseline run has no hypervolume)" in regress_report([skip])
