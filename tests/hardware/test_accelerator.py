"""Unit tests for the accelerator model."""

import pytest

from repro.hardware.accelerator import build_accelerator
from repro.hardware.memory import MemoryInstance, level
from repro.workloads.layer import LayerSpec, OpType


def small_accel():
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb = MemoryInstance.sram("LB_IO", 4 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "small",
        {"K": 4, "OX": 2, "OY": 2},
        [level(w_reg, "W"), level(o_reg, "O"), level(lb, "IO"), level(dram, "WIO")],
    )


def layer(**kw):
    base = dict(k=8, c=4, ox=16, oy=16, fx=3, fy=3, px=1, py=1)
    base.update(kw)
    return LayerSpec(name="t", **base)


class TestValidation:
    def test_requires_dram_top(self):
        lb = MemoryInstance.sram("LB_IO", 1024)
        with pytest.raises(ValueError):
            build_accelerator("bad", {"K": 2}, [level(lb, "WIO")])

    def test_requires_each_operand_served(self):
        dram = MemoryInstance.dram()
        with pytest.raises(ValueError):
            build_accelerator("bad", {"K": 2}, [level(dram, "IO")])

    def test_rejects_unknown_spatial_dim(self):
        dram = MemoryInstance.dram()
        with pytest.raises(ValueError):
            build_accelerator("bad", {"Z": 2}, [level(dram, "WIO")])


class TestPEArray:
    def test_pe_count(self):
        assert small_accel().pe_count == 16

    def test_full_utilization(self):
        assert small_accel().spatial_utilization(layer()) == pytest.approx(1.0)

    def test_underutilized_small_k(self):
        # k=1 uses 1 of 4 K lanes.
        util = small_accel().spatial_utilization(layer(k=1))
        assert util == pytest.approx(0.25)

    def test_underutilized_1x1_tile(self):
        # The Fig. 14(b) effect: a (1,1) tile wastes the OX/OY lanes.
        util = small_accel().spatial_utilization(layer(ox=1, oy=1))
        assert util == pytest.approx(1 / 4)

    def test_nondividing_dim(self):
        # k=6 on K4 lanes: ceil(6/4)=2 passes, 6/8 utilization.
        util = small_accel().spatial_utilization(layer(k=6))
        assert util == pytest.approx(6 / 8)


class TestSpatialReuse:
    def test_weight_reuse_over_ox_oy(self):
        # W is irrelevant to OX/OY: one weight read serves 4 PEs.
        assert small_accel().spatial_reuse(layer(), "W") == pytest.approx(4.0)

    def test_weight_reuse_collapses_for_1x1_tile(self):
        assert small_accel().spatial_reuse(layer(ox=1, oy=1), "W") == pytest.approx(1.0)

    def test_input_reuse_over_k(self):
        assert small_accel().spatial_reuse(layer(), "I") == pytest.approx(4.0)

    def test_output_reduction_none_without_c_unroll(self):
        assert small_accel().spatial_reuse(layer(), "O") == pytest.approx(1.0)

    def test_depthwise_input_reuse_is_one(self):
        dw = LayerSpec(
            name="dw", op_type=OpType.DEPTHWISE, c=1, k=8, ox=16, oy=16,
            fx=3, fy=3, px=1, py=1,
        )
        # K is input-relevant for depthwise: no broadcast over K lanes.
        assert small_accel().spatial_reuse(dw, "I") == pytest.approx(1.0)


class TestHierarchy:
    def test_hierarchies(self):
        accel = small_accel()
        assert [l.name for l in accel.hierarchy("W")] == ["W_reg", "DRAM"]
        assert [l.name for l in accel.hierarchy("I")] == ["LB_IO", "DRAM"]
        assert [l.name for l in accel.hierarchy("O")] == ["O_reg", "LB_IO", "DRAM"]

    def test_level_rank_ordering(self):
        accel = small_accel()
        ranks = [accel.level_rank(l) for l in accel.hierarchy("O")]
        assert ranks == sorted(ranks)

    def test_instances_deduplicated(self):
        accel = small_accel()
        names = [i.name for i in accel.instances()]
        assert names.count("LB_IO") == 1

    def test_on_chip_capacity_excludes_dram(self):
        assert small_accel().on_chip_capacity_bytes() == 1 + 2 + 4 * 1024

    def test_top_weight_buffer(self):
        # Only the per-PE register holds W on-chip here.
        top = small_accel().top_weight_buffer()
        assert top is not None and top.name == "W_reg"


class TestFingerprint:
    """Stability of the structural digest the persistent mapping cache
    keys on: it must survive re-construction (fresh instances, other
    dict orders) and must change when the hardware actually changes."""

    def _build(self, unroll_items, lb_bytes=4 * 1024):
        """A fresh accelerator (all-new memory instances) with the
        spatial unrolling dict built in the given item order."""
        w_reg = MemoryInstance.register("W_reg", 1)
        o_reg = MemoryInstance.register("O_reg", 2)
        lb = MemoryInstance.sram("LB_IO", lb_bytes)
        dram = MemoryInstance.dram()
        return build_accelerator(
            "small",
            dict(unroll_items),
            [
                level(w_reg, "W"),
                level(o_reg, "O"),
                level(lb, "IO"),
                level(dram, "WIO"),
            ],
        )

    def test_stable_across_reconstruction(self):
        items = [("K", 4), ("OX", 2), ("OY", 2)]
        assert self._build(items).fingerprint() == self._build(items).fingerprint()

    def test_stable_across_spatial_dict_order(self):
        forward = self._build([("K", 4), ("OX", 2), ("OY", 2)])
        backward = self._build([("OY", 2), ("OX", 2), ("K", 4)])
        assert forward.fingerprint() == backward.fingerprint()

    def test_matches_zoo_reconstruction(self):
        from repro.hardware.zoo import get_accelerator

        assert (
            get_accelerator("meta_proto_like_df").fingerprint()
            == get_accelerator("meta_proto_like_df").fingerprint()
        )

    def test_changes_when_memory_level_changes(self):
        base = self._build([("K", 4), ("OX", 2), ("OY", 2)])
        bigger_lb = self._build(
            [("K", 4), ("OX", 2), ("OY", 2)], lb_bytes=8 * 1024
        )
        assert base.fingerprint() != bigger_lb.fingerprint()

    def test_changes_when_unroll_changes(self):
        base = self._build([("K", 4), ("OX", 2), ("OY", 2)])
        wider = self._build([("K", 8), ("OX", 2), ("OY", 2)])
        assert base.fingerprint() != wider.fingerprint()

    def test_zoo_architectures_are_distinct(self):
        from repro.hardware.zoo import ACCELERATOR_FACTORIES

        prints = {
            factory().fingerprint()
            for factory in ACCELERATOR_FACTORIES.values()
        }
        assert len(prints) == len(ACCELERATOR_FACTORIES)
