"""The accelerator zoo must match Table I(a)."""

import pytest

from repro.hardware.zoo import ACCELERATOR_FACTORIES, get_accelerator

MB = 1024 * 1024


@pytest.fixture(scope="module")
def zoo():
    return {name: f() for name, f in ACCELERATOR_FACTORIES.items()}


class TestNormalization:
    @pytest.mark.parametrize("name", list(ACCELERATOR_FACTORIES))
    def test_1024_macs(self, zoo, name):
        assert zoo[name].pe_count == 1024

    @pytest.mark.parametrize("name", list(ACCELERATOR_FACTORIES))
    def test_global_buffer_at_most_2mb(self, zoo, name):
        gb = sum(
            i.size_bytes
            for i in zoo[name].instances()
            if i.tier == "GB"
        )
        assert gb <= 2 * MB


class TestSpatialUnrolling:
    def test_meta_proto(self, zoo):
        assert zoo["meta_proto_like"].spatial_unrolling == {
            "K": 32, "C": 2, "OX": 4, "OY": 4,
        }

    def test_tpu(self, zoo):
        assert zoo["tpu_like"].spatial_unrolling == {"K": 32, "C": 32}

    def test_edge_tpu(self, zoo):
        assert zoo["edge_tpu_like"].spatial_unrolling == {
            "K": 8, "C": 8, "OX": 4, "OY": 4,
        }

    def test_ascend(self, zoo):
        assert zoo["ascend_like"].spatial_unrolling == {
            "K": 16, "C": 16, "OX": 2, "OY": 2,
        }

    def test_tesla(self, zoo):
        assert zoo["tesla_npu_like"].spatial_unrolling == {
            "K": 32, "OX": 8, "OY": 4,
        }

    @pytest.mark.parametrize(
        "base", ["meta_proto_like", "tpu_like", "edge_tpu_like", "ascend_like", "tesla_npu_like"]
    )
    def test_df_variant_keeps_unrolling(self, zoo, base):
        # DF guideline 1: spatial unrolling is unchanged.
        assert zoo[base].spatial_unrolling == zoo[base + "_df"].spatial_unrolling


class TestDFGuidelines:
    def test_tpu_baseline_has_no_onchip_weights(self, zoo):
        accel = zoo["tpu_like"]
        on_chip_w = [
            l for l in accel.hierarchy("W")
            if not l.instance.is_dram and not l.instance.per_pe
        ]
        assert on_chip_w == []

    def test_tpu_df_gains_weight_buffer(self, zoo):
        accel = zoo["tpu_like_df"]
        top = accel.top_weight_buffer()
        assert top is not None and top.instance.size_bytes >= 1 * MB

    @pytest.mark.parametrize(
        "name",
        ["meta_proto_like_df", "tpu_like_df", "edge_tpu_like_df",
         "ascend_like_df", "tesla_npu_like_df"],
    )
    def test_df_variants_share_io_low_level(self, zoo, name):
        # DF guideline 3: I and O share a lower-level memory.
        accel = zoo[name]
        shared = [
            l for l in accel.levels
            if l.serves("I") and l.serves("O")
            and not l.instance.is_dram and l.instance.tier == "LB"
        ]
        assert shared, f"{name} has no shared I&O local buffer"


class TestCapacities:
    def test_meta_proto_df_lb_sizes(self, zoo):
        sizes = {i.name: i.size_bytes for i in zoo["meta_proto_like_df"].instances()}
        assert sizes["LB_W"] == 32 * 1024
        assert sizes["LB_IO"] == 64 * 1024
        assert sizes["GB_W"] == 1 * MB
        assert sizes["GB_IO"] == 1 * MB

    def test_tesla_df_gb_io_trimmed(self, zoo):
        sizes = {i.name: i.size_bytes for i in zoo["tesla_npu_like_df"].instances()}
        assert sizes["GB_IO"] == 896 * 1024


class TestLookup:
    def test_depfin_available(self):
        assert get_accelerator("depfin_like").pe_count == 1024

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_accelerator("gpu_like")
