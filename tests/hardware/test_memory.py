"""Unit tests for memory instances and levels."""

import math

import pytest

from repro.hardware.memory import MemoryInstance, MemoryLevel, level


class TestMemoryInstance:
    def test_register_properties(self):
        reg = MemoryInstance.register("W_reg", 1)
        assert reg.per_pe
        assert reg.tier == "Reg"
        assert reg.bandwidth_bytes == math.inf
        assert not reg.is_dram

    def test_sram_tier_inference(self):
        assert MemoryInstance.sram("LB_W", 1024).tier == "LB"
        assert MemoryInstance.sram("LB2_IO", 1024).tier == "LB"
        assert MemoryInstance.sram("GB_IO", 1024).tier == "GB"
        assert MemoryInstance.sram("scratch", 1024).tier == "SRAM"

    def test_sram_energy_grows_with_size(self):
        small = MemoryInstance.sram("LB_a", 16 * 1024)
        big = MemoryInstance.sram("GB_b", 2 * 1024 * 1024)
        assert small.r_energy_pj_per_byte < big.r_energy_pj_per_byte

    def test_dram_properties(self):
        d = MemoryInstance.dram()
        assert d.is_dram
        assert d.tier == "DRAM"
        assert d.bandwidth_bytes == 8.0  # 64 bit/cycle

    def test_uid_unique(self):
        a = MemoryInstance.sram("LB_x", 1024)
        b = MemoryInstance.sram("LB_x", 1024)
        assert a.uid != b.uid

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryInstance("bad", 0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MemoryInstance("bad", 8, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            MemoryInstance("bad", 8, 1.0, 1.0, 1.0, ports=0)


class TestMemoryLevel:
    def test_level_helper(self):
        inst = MemoryInstance.sram("LB_IO", 1024)
        lvl = level(inst, "IO")
        assert lvl.serves("I") and lvl.serves("O") and not lvl.serves("W")
        assert lvl.name == "LB_IO"

    def test_rejects_unknown_operand(self):
        inst = MemoryInstance.sram("LB_x", 1024)
        with pytest.raises(ValueError):
            MemoryLevel(instance=inst, operands=frozenset({"Z"}))

    def test_rejects_empty_operands(self):
        inst = MemoryInstance.sram("LB_x", 1024)
        with pytest.raises(ValueError):
            MemoryLevel(instance=inst, operands=frozenset())
