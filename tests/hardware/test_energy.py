"""The energy model must preserve the orderings the paper relies on."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import energy


class TestSramEnergy:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            energy.sram_energy_pj_per_byte(0)

    @given(st.integers(min_value=1, max_value=1 << 24))
    def test_positive(self, size):
        assert energy.sram_energy_pj_per_byte(size) > 0

    @given(
        st.integers(min_value=1, max_value=1 << 22),
        st.integers(min_value=1, max_value=4),
    )
    def test_monotone_in_capacity(self, size, factor):
        assert energy.sram_energy_pj_per_byte(size * factor) >= (
            energy.sram_energy_pj_per_byte(size)
        )

    def test_hierarchy_ordering(self):
        """Reg << LB << GB << DRAM, the backbone of every case study."""
        reg = energy.REGISTER_ENERGY_PJ_PER_BYTE
        lb = energy.sram_energy_pj_per_byte(64 * 1024)
        gb = energy.sram_energy_pj_per_byte(2 * 1024 * 1024)
        dram = energy.DRAM_ENERGY_PJ_PER_BYTE
        assert reg < lb < gb < dram
        assert dram / gb > 10  # DRAM dominates SL schedules (Fig. 18a)


class TestBandwidth:
    def test_dram_is_64_bit_per_cycle(self):
        assert energy.DRAM_BANDWIDTH_BYTES == 8.0

    def test_small_srams_are_wider(self):
        assert energy.sram_bandwidth_bytes(32 * 1024) >= (
            energy.sram_bandwidth_bytes(2 * 1024 * 1024)
        )
