"""Tests for the artifact-style command-line interface."""

import json

import pytest

from repro.cli import (
    DFMODE_ALIASES,
    _byte_size,
    _fuse_list,
    _mode_list,
    _name_list,
    _resolve_mode,
    _seed,
    build_cache_info_parser,
    build_dse_parser,
    build_parser,
    main,
)
from repro.core.strategy import OverlapMode


class TestParser:
    def test_required_args(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(
            ["--accelerator", "meta_proto_like_df", "--workload", "fsrcnn"]
        )
        assert args.tilex == (16,) and args.tiley == (8,)
        assert args.lpf_limit == 6
        assert args.jobs == 1 and args.cache is None
        assert args.seed == 0  # the shared seed option is always plumbed
        assert args.engine == "batch"  # vectorized engine is the default

    def test_engine_choices(self):
        base = ["--accelerator", "meta_proto_like_df", "--workload", "fsrcnn"]
        args = build_parser().parse_args(base + ["--engine", "scalar"])
        assert args.engine == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(base + ["--engine", "turbo"])

    def test_tile_lists(self):
        args = build_parser().parse_args(
            [
                "--accelerator", "meta_proto_like_df",
                "--workload", "fsrcnn",
                "--tilex", "4,16,60",
                "--tiley", "72",
            ]
        )
        assert args.tilex == (4, 16, 60) and args.tiley == (72,)

    def test_bad_tile_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "--accelerator", "meta_proto_like_df",
                    "--workload", "fsrcnn",
                    "--tilex", "4,banana",
                ]
            )

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--accelerator", "gpu", "--workload", "fsrcnn"]
            )


class TestValidators:
    def test_seed_rejects_negative_and_junk(self):
        assert _seed("0") == 0 and _seed("42") == 42
        with pytest.raises(Exception):
            _seed("-1")
        with pytest.raises(Exception):
            _seed("banana")

    def test_name_list(self):
        assert _name_list("energy,latency") == ("energy", "latency")
        assert _name_list(" a , b ") == ("a", "b")
        with pytest.raises(Exception):
            _name_list(",")

    def test_mode_list_accepts_names_and_artifact_integers(self):
        assert _mode_list("fully_cached,1") == (
            OverlapMode.FULLY_CACHED,
            OverlapMode.H_CACHED_V_RECOMPUTE,
        )

    def test_mode_list_rejects_unknown_as_argparse_error(self):
        """Inside a type= callable the failure must be an
        ArgumentTypeError (usage + exit 2), not a bare SystemExit."""
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _mode_list("bogus")
        with pytest.raises(SystemExit):
            build_dse_parser().parse_args(
                ["--workload", "fsrcnn", "--modes", "bogus"]
            )

    def test_fuse_list(self):
        assert _fuse_list("auto,1,4") == (None, 1, 4)
        with pytest.raises(Exception):
            _fuse_list("0")
        with pytest.raises(Exception):
            _fuse_list("sometimes")


class TestDseParser:
    def test_defaults(self):
        args = build_dse_parser().parse_args(["--workload", "resnet18"])
        assert args.strategy == "genetic"
        assert args.objectives == ("energy",)
        assert args.accelerators == ("meta_proto_like_df",)
        assert args.tilex == (1, 4, 16, 60, 240, 960)  # paper grid
        assert args.fuse_depths == (None,)
        assert args.seed == 0 and args.jobs == 1
        assert args.max_evals is None

    def test_requires_exactly_one_workload_option(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["dse"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(
                [
                    "dse",
                    "--workload", "fsrcnn",
                    "--workloads", "fsrcnn,mccnn",
                ]
            )

    def test_byte_size_parsing(self):
        assert _byte_size("4096") == 4096
        assert _byte_size("64K") == 64 * 1024
        assert _byte_size("1.5MiB") == int(1.5 * 1024 * 1024)
        assert _byte_size("2gb") == 2 * 1024**3
        assert _byte_size("fit") == "fit"
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _byte_size("huge")
        with pytest.raises(argparse.ArgumentTypeError):
            _byte_size("0")

    def test_unknown_scenario_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["dse", "--workloads", "fsrcnn,nonesuch"])

    def test_unknown_accelerator_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["dse", "--workload", "fsrcnn", "--accelerators", "gpu"]
            )

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["dse", "--workload", "fsrcnn", "--objectives", "carbon"]
            )

    def test_duplicate_axis_values_exit_cleanly(self):
        """Duplicate axis values are a CLI error, not a traceback."""
        with pytest.raises(SystemExit, match="duplicates"):
            main(["dse", "--workload", "fsrcnn", "--tilex", "4,4"])


class TestDseMain:
    def test_exhaustive_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "dse.json"
        csv_path = tmp_path / "frontier.csv"
        code = main(
            [
                "dse",
                "--workload", "mobilenet_v1",
                "--strategy", "exhaustive",
                "--objectives", "energy,latency",
                "--tilex", "14,28",
                "--tiley", "14",
                "--modes", "fully_cached",
                "--budget", "40",
                "--lpf-limit", "5",
                "--seed", "0",
                "--csv", str(csv_path),
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "frontier size" in captured
        assert "energy [mJ]" in captured

        summary = json.loads(out.read_text())
        assert summary["evaluations"] == 2
        assert summary["objectives"] == ["energy", "latency"]
        assert summary["frontier"]["entries"]
        assert csv_path.read_text().startswith(
            "accelerator,tile_x,tile_y,mode,fuse_depth,partition,"
            "energy,latency,violation"
        )
        assert "hypervolume" in captured  # convergence table is printed

    def test_constrained_scenario_end_to_end(self, tmp_path, capsys):
        """A 2-workload scenario with a tight memory budget: the run
        reports the infeasible designs and an all-feasible frontier."""
        out = tmp_path / "dse.json"
        code = main(
            [
                "dse",
                "--workloads", "mobilenet_v1:2,fsrcnn",
                "--strategy", "exhaustive",
                "--objectives", "energy",
                "--tilex", "14",
                "--tiley", "14,112",
                "--modes", "fully_cached",
                "--budget", "40",
                "--lpf-limit", "5",
                "--memory-budget", "fit",
                "--show-infeasible",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "mobilenet_v1:2,fsrcnn" in captured
        assert "constraints: activations fit" in captured
        assert "infeasible designs" in captured
        summary = json.loads(out.read_text())
        assert summary["workload"] == "mobilenet_v1:2,fsrcnn"
        assert summary["constraints"] == [["memory_budget", None]]
        assert summary["evaluations"] == 2
        assert summary["generations"]


class TestDsePartitionOptions:
    def test_partition_list_parsing(self):
        from repro.cli import _partition_list

        assert _partition_list("auto;1;1,3;all") == (None, (1,), (1, 3), ())
        assert _partition_list("3,1") == ((1, 3),)  # normalized
        import argparse

        for bad in ("", ";;", "banana", "0", "1,-2"):
            with pytest.raises(argparse.ArgumentTypeError):
                _partition_list(bad)

    def test_partition_genes_and_stacks_conflict(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "dse", "--workload", "mccnn",
                    "--partition-genes", "--stacks", "auto",
                ]
            )

    def test_fuse_depths_and_partition_genes_conflict(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "dse", "--workload", "mccnn",
                    "--partition-genes", "--fuse-depths", "auto,2",
                ]
            )

    def test_out_of_range_stacks_cut_rejected(self):
        # mccnn has 4 branch-free segments: cuts live in 1..3.
        with pytest.raises(SystemExit, match="within 1..3"):
            main(["dse", "--workload", "mccnn", "--stacks", "9"])

    def test_stacks_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "dse.json"
        csv_path = tmp_path / "frontier.csv"
        code = main(
            [
                "dse",
                "--workload", "mccnn",
                "--strategy", "exhaustive",
                "--objectives", "energy",
                "--tilex", "16",
                "--tiley", "4",
                "--modes", "fully_cached",
                "--budget", "40",
                "--lpf-limit", "4",
                "--stacks", "auto;1,3",
                "--csv", str(csv_path),
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "partition genes: mccnn: 4 segments" in captured
        summary = json.loads(out.read_text())
        assert summary["evaluations"] == 2
        points = [
            entry["point"] for entry in summary["frontier"]["entries"]
        ]
        assert any("partition" in p for p in points) or len(points) == 1
        assert "partition" in csv_path.read_text().splitlines()[0]

    def test_partition_genes_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "dse.json"
        code = main(
            [
                "dse",
                "--workload", "mccnn",
                "--strategy", "genetic",
                "--population", "4",
                "--generations", "2",
                "--objectives", "energy",
                "--tilex", "16",
                "--tiley", "4",
                "--modes", "fully_cached",
                "--budget", "40",
                "--lpf-limit", "4",
                "--partition-genes",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "axis = all partitions over 4 branch-free segments" in captured
        summary = json.loads(out.read_text())
        assert summary["evaluations"] >= 1


class TestCacheInfoMain:
    def test_reports_saved_cache(self, tmp_path, capsys):
        cache_path = tmp_path / "loma.json"
        assert main(
            [
                "--accelerator", "meta_proto_like_df",
                "--workload", "mobilenet_v1",
                "--tilex", "14",
                "--tiley", "14",
                "--budget", "40",
                "--lpf-limit", "5",
                "--cache", str(cache_path),
            ]
        ) == 0
        capsys.readouterr()

        assert main(["cache-info", str(cache_path)]) == 0
        captured = capsys.readouterr().out
        assert "status:  ok" in captured
        assert "entries:" in captured
        assert "hits" in captured

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["cache-info", str(tmp_path / "nope.json")]) == 1
        assert "missing" in capsys.readouterr().out

    def test_unusable_file_fails(self, tmp_path, capsys):
        """Corrupt and stale-version files exit nonzero so scripts can
        gate on the status."""
        torn = tmp_path / "torn.json"
        torn.write_text("not json{")
        assert main(["cache-info", str(torn)]) == 1
        assert "corrupt" in capsys.readouterr().out

        stale = tmp_path / "stale.json"
        stale.write_text('{"format": 999, "entries": {}}')
        assert main(["cache-info", str(stale)]) == 1
        assert "stale-version" in capsys.readouterr().out

    def test_requires_path_or_server(self):
        # the parser accepts zero positionals (server mode) ...
        args = build_cache_info_parser().parse_args([])
        assert args.path is None and args.cache_server is None
        # ... but the command demands one of the two sources
        with pytest.raises(SystemExit, match="cache file path"):
            main(["cache-info"])

    def test_path_and_server_conflict(self):
        with pytest.raises(SystemExit, match="not both"):
            main(["cache-info", "some.json", "--cache-server", "x:1"])

    def test_unreachable_server_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unreachable"):
            main(["cache-info", "--cache-server", "127.0.0.1:1"])

    def test_live_server_stats(self, capsys):
        from repro.serve import CacheServer

        with CacheServer() as server:
            host, port = server.address
            assert main(["cache-info", "--cache-server", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert "size:        0 entries" in out
        assert "connections: 1 open" in out
        assert "in flight" in out and "queued" in out


class TestModeResolution:
    def test_names(self):
        assert _resolve_mode("fully_cached") is OverlapMode.FULLY_CACHED

    def test_artifact_integers(self):
        assert _resolve_mode("0") is OverlapMode.FULLY_RECOMPUTE
        assert _resolve_mode("1") is OverlapMode.H_CACHED_V_RECOMPUTE
        assert _resolve_mode("2") is OverlapMode.FULLY_CACHED
        assert set(DFMODE_ALIASES) == {"0", "1", "2"}

    def test_unknown_mode_exits(self):
        with pytest.raises(SystemExit):
            _resolve_mode("3")


class TestMain:
    def test_end_to_end_with_json_output(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            [
                "--accelerator", "meta_proto_like_df",
                "--workload", "mobilenet_v1",
                "--mode", "2",
                "--tilex", "14",
                "--tiley", "14",
                "--budget", "40",
                "--lpf-limit", "5",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "mobilenet_v1 on meta_proto_like_df" in captured

        summary = json.loads(out.read_text())
        assert summary["energy_pj"] > 0
        assert summary["latency_cycles"] > 0
        assert summary["stacks"]
        assert set(summary["accesses_by_tier"]) >= {"LB", "GB", "DRAM"}

    def test_sweep_with_persistent_cache(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        cache = tmp_path / "loma_cache.json"
        argv = [
            "--accelerator", "meta_proto_like_df",
            "--workload", "mobilenet_v1",
            "--mode", "fully_cached",
            "--tilex", "14,28",
            "--tiley", "14",
            "--budget", "40",
            "--lpf-limit", "5",
            "--cache", str(cache),
            "--output", str(out),
        ]
        assert main(argv) == 0
        assert cache.exists()
        first = json.loads(out.read_text())
        assert len(first["points"]) == 2
        assert first["best_strategy"]
        captured = capsys.readouterr().out
        assert "best (energy):" in captured

        # A second, cache-warm run reproduces the sweep exactly.
        assert main(argv) == 0
        second = json.loads(out.read_text())
        assert second == first


class TestConstraintOptionValidation:
    def test_non_finite_caps_rejected(self):
        """NaN/inf caps must be CLI errors, never silently-disabled
        constraints (max(0.0, nan) is 0.0 => everything 'feasible')."""
        for bad in ("nan", "inf", "-1", "0"):
            with pytest.raises(SystemExit):
                build_dse_parser().parse_args(
                    ["--workload", "fsrcnn", "--latency-cap", bad]
                )

    def test_non_finite_byte_sizes_are_argparse_errors(self):
        import argparse

        for bad in ("inf", "1e999", "nan"):
            with pytest.raises(argparse.ArgumentTypeError):
                _byte_size(bad)


class TestServeParser:
    def test_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.cache is None and args.timeout is None
        assert args.snapshot_interval == 30.0

    def test_rejects_bad_interval(self):
        from repro.cli import build_serve_parser

        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--snapshot-interval", "0"])

    def test_metrics_port_default_off(self):
        from repro.cli import build_serve_parser

        assert build_serve_parser().parse_args([]).metrics_port is None


class TestServeMain:
    def test_serve_with_timeout_and_persistence(self, tmp_path, capsys):
        cache_file = tmp_path / "served.json"
        code = main(
            ["serve", "--port", "0", "--timeout", "0.3", "--cache", str(cache_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache server listening on 127.0.0.1:" in out
        assert "0 entries loaded" in out
        assert "cache server stopped" in out
        assert cache_file.exists()  # final snapshot written

    def test_serve_announces_metrics_endpoint(self, capsys):
        code = main(
            ["serve", "--port", "0", "--timeout", "0.3", "--metrics-port", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        # Startup contract: the address line stays first.
        assert "cache server listening on" in lines[0]
        assert any(
            "metrics endpoint on http://" in line and "/metrics" in line
            for line in lines
        )

    def test_remote_shutdown_ends_serve_after_final_snapshot(
        self, tmp_path, capsys
    ):
        """A client 'shutdown' op stops a foreground server promptly —
        and the server's exit still waits for the final snapshot, so
        entries sent just before shutdown are on disk when it returns."""
        import threading

        from repro.mapping.cache import MappingCache
        from repro.serve import CacheClient

        from .serve.test_cache_server import make_result

        cache_file = tmp_path / "served.json"
        done = []

        def run_server():
            done.append(
                main(
                    [
                        "serve",
                        "--port", "0",
                        "--timeout", "30",
                        "--cache", str(cache_file),
                    ]
                )
            )

        thread = threading.Thread(target=run_server)
        thread.start()
        address = None
        for _ in range(100):
            out = capsys.readouterr().out
            for line in out.splitlines():
                if "listening on" in line:
                    address = line.rsplit(" ", 1)[-1]
            if address:
                break
            threading.Event().wait(0.05)
        assert address is not None
        client = CacheClient(address)
        client.put("last-second", make_result(1))
        client.shutdown_server()
        thread.join(timeout=10)
        assert done == [0]
        assert MappingCache(cache_file).get("last-second") == make_result(1)


class TestCacheServerOptions:
    def test_cache_and_cache_server_conflict(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "--accelerator", "meta_proto_like_df",
                    "--workload", "fsrcnn",
                    "--cache", "x.json",
                    "--cache-server", "127.0.0.1:1",
                ]
            )

    def test_bad_address_exits_cleanly(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(
                [
                    "--accelerator", "meta_proto_like_df",
                    "--workload", "fsrcnn",
                    "--cache-server", "nonsense",
                ]
            )

    def test_unreachable_server_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unreachable"):
            main(
                [
                    "--accelerator", "meta_proto_like_df",
                    "--workload", "fsrcnn",
                    "--cache-server", "127.0.0.1:9",  # discard port: nothing listens
                ]
            )

    def test_sweep_through_live_server(self, capsys):
        """A classic sweep with --cache-server: the shared table fills
        and the CLI reports the server's stats."""
        from repro.mapping.cache import MappingCache
        from repro.serve import CacheServer

        shared = MappingCache()
        with CacheServer(cache=shared) as server:
            code = main(
                [
                    "--accelerator", "meta_proto_like_df",
                    "--workload", "fsrcnn",
                    "--tilex", "4,16",
                    "--tiley", "4",
                    "--budget", "40",
                    "--lpf-limit", "4",
                    "--cache-server", server.describe(),
                ]
            )
        assert code == 0
        assert len(shared) > 0
        out = capsys.readouterr().out
        assert "cache server 127.0.0.1:" in out
        assert "best (energy)" in out


class TestDseServiceAndReference:
    DSE_ARGS = [
        "dse",
        "--workload", "mobilenet_v1",
        "--strategy", "exhaustive",
        "--objectives", "energy,latency",
        "--tilex", "14,28",
        "--tiley", "14",
        "--modes", "fully_cached",
        "--budget", "40",
        "--lpf-limit", "5",
    ]

    def test_dse_through_service_backend_matches_serial(self, tmp_path, capsys):
        serial_out = tmp_path / "serial.json"
        service_out = tmp_path / "service.json"
        assert main(self.DSE_ARGS + ["--output", str(serial_out)]) == 0
        assert (
            main(
                self.DSE_ARGS
                + [
                    "--backend", "service",
                    "--jobs", "2",
                    "--output", str(service_out),
                ]
            )
            == 0
        )
        serial = json.loads(serial_out.read_text())
        served = json.loads(service_out.read_text())
        assert served["frontier"] == serial["frontier"]
        assert served["generations"] == serial["generations"]

    def test_reference_tracking_prints_epsilon(self, tmp_path, capsys):
        reference = tmp_path / "ref.json"
        assert main(self.DSE_ARGS + ["--output", str(reference)]) == 0
        capsys.readouterr()
        assert main(self.DSE_ARGS + ["--reference", str(reference)]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out

    def test_bad_reference_exits_cleanly(self, tmp_path):
        bad = tmp_path / "ref.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="not a frontier file"):
            main(self.DSE_ARGS + ["--reference", str(bad)])

    def test_plot_skips_gracefully_without_matplotlib(self, tmp_path, capsys):
        from repro.analysis import HAVE_MATPLOTLIB

        plot = tmp_path / "plot.png"
        code = main(self.DSE_ARGS + ["--plot", str(plot)])
        assert code == 0
        out = capsys.readouterr().out
        if HAVE_MATPLOTLIB:
            assert plot.exists() and f"wrote {plot}" in out
        else:
            assert not plot.exists()
            assert "skipping --plot" in out
