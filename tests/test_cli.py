"""Tests for the artifact-style command-line interface."""

import json

import pytest

from repro.cli import DFMODE_ALIASES, _resolve_mode, build_parser, main
from repro.core.strategy import OverlapMode


class TestParser:
    def test_required_args(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(
            ["--accelerator", "meta_proto_like_df", "--workload", "fsrcnn"]
        )
        assert args.tilex == (16,) and args.tiley == (8,)
        assert args.lpf_limit == 6
        assert args.jobs == 1 and args.cache is None

    def test_tile_lists(self):
        args = build_parser().parse_args(
            [
                "--accelerator", "meta_proto_like_df",
                "--workload", "fsrcnn",
                "--tilex", "4,16,60",
                "--tiley", "72",
            ]
        )
        assert args.tilex == (4, 16, 60) and args.tiley == (72,)

    def test_bad_tile_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "--accelerator", "meta_proto_like_df",
                    "--workload", "fsrcnn",
                    "--tilex", "4,banana",
                ]
            )

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--accelerator", "gpu", "--workload", "fsrcnn"]
            )


class TestModeResolution:
    def test_names(self):
        assert _resolve_mode("fully_cached") is OverlapMode.FULLY_CACHED

    def test_artifact_integers(self):
        assert _resolve_mode("0") is OverlapMode.FULLY_RECOMPUTE
        assert _resolve_mode("1") is OverlapMode.H_CACHED_V_RECOMPUTE
        assert _resolve_mode("2") is OverlapMode.FULLY_CACHED
        assert set(DFMODE_ALIASES) == {"0", "1", "2"}

    def test_unknown_mode_exits(self):
        with pytest.raises(SystemExit):
            _resolve_mode("3")


class TestMain:
    def test_end_to_end_with_json_output(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            [
                "--accelerator", "meta_proto_like_df",
                "--workload", "mobilenet_v1",
                "--mode", "2",
                "--tilex", "14",
                "--tiley", "14",
                "--budget", "40",
                "--lpf-limit", "5",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "mobilenet_v1 on meta_proto_like_df" in captured

        summary = json.loads(out.read_text())
        assert summary["energy_pj"] > 0
        assert summary["latency_cycles"] > 0
        assert summary["stacks"]
        assert set(summary["accesses_by_tier"]) >= {"LB", "GB", "DRAM"}

    def test_sweep_with_persistent_cache(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        cache = tmp_path / "loma_cache.json"
        argv = [
            "--accelerator", "meta_proto_like_df",
            "--workload", "mobilenet_v1",
            "--mode", "fully_cached",
            "--tilex", "14,28",
            "--tiley", "14",
            "--budget", "40",
            "--lpf-limit", "5",
            "--cache", str(cache),
            "--output", str(out),
        ]
        assert main(argv) == 0
        assert cache.exists()
        first = json.loads(out.read_text())
        assert len(first["points"]) == 2
        assert first["best_strategy"]
        captured = capsys.readouterr().out
        assert "best (energy):" in captured

        # A second, cache-warm run reproduces the sweep exactly.
        assert main(argv) == 0
        second = json.loads(out.read_text())
        assert second == first
