"""Telemetry tests always start (and leave) the layer clean: the obs
module is process-global state, so a leaked enable would bleed spans
and counters into unrelated tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()
