"""Run ledger: durable per-run records, crash capture, read-back."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import ledger


@pytest.fixture
def runs(tmp_path):
    return tmp_path / "runs"


def begin(runs, command="evaluate", **manifest):
    return ledger.begin_run(
        command, [command, "--seed", "7"], manifest or None, directory=runs
    )


class TestLifecycle:
    def test_begin_writes_running_record(self, runs):
        handle = begin(runs, workload="tiny")
        record = json.loads(handle.path.read_text())
        assert record["status"] == "running"
        assert record["command"] == "evaluate"
        assert record["argv"] == ["evaluate", "--seed", "7"]
        assert record["manifest"] == {"workload": "tiny"}
        assert record["pid"] == os.getpid()
        assert record["versions"]["python"]
        assert record["format"] == ledger.LEDGER_FORMAT_VERSION

    def test_finish_seals_record(self, runs):
        handle = begin(runs)
        handle.finish("ok", result={"energy_mj": 1.25})
        record = json.loads(handle.path.read_text())
        assert record["status"] == "ok"
        assert record["result"] == {"energy_mj": 1.25}
        assert record["wall_seconds"] >= 0
        assert record["finished"] >= record["started"]

    def test_finish_is_idempotent_first_wins(self, runs):
        """A crash handler's ``crashed`` cannot be flipped back to
        ``ok`` by an outer handler finishing again."""
        handle = begin(runs)
        handle.finish("crashed", error="ValueError: boom")
        handle.finish("ok")
        record = json.loads(handle.path.read_text())
        assert record["status"] == "crashed"
        assert record["error"] == "ValueError: boom"

    def test_finish_captures_metrics_when_telemetry_on(self, runs):
        obs.enable()
        obs.metrics().counter("loma_orderings_evaluated_total").inc(120)
        handle = begin(runs)
        handle.finish()
        record = json.loads(handle.path.read_text())
        names = [m["name"] for m in record["metrics"]["metrics"]]
        assert "loma_orderings_evaluated_total" in names

    def test_no_metrics_key_when_telemetry_off(self, runs):
        handle = begin(runs)
        handle.finish()
        assert "metrics" not in json.loads(handle.path.read_text())

    def test_active_run_tracks_lifecycle(self, runs):
        assert ledger.active_run() is None
        handle = begin(runs)
        assert ledger.active_run() is handle
        handle.finish()
        assert ledger.active_run() is None

    def test_convergence_points_flush_immediately(self, runs):
        """Streamed per generation: a SIGKILLed search still leaves the
        partial series on disk, status ``running``."""
        handle = begin(runs, command="dse")
        handle.add_convergence({"index": 0, "hypervolume": 0.5})
        handle.add_convergence({"index": 1, "hypervolume": 0.75})
        record = json.loads(handle.path.read_text())
        assert record["status"] == "running"
        assert [p["hypervolume"] for p in record["convergence"]] == [0.5, 0.75]

    def test_convergence_write_failure_does_not_raise(self, runs, monkeypatch):
        """A full disk mid-search loses a flush, not the run: the point
        stays in the record and finish() retries the write."""
        handle = begin(runs, command="dse")
        real_write = ledger.RunHandle._write
        monkeypatch.setattr(
            ledger.RunHandle,
            "_write",
            lambda self: (_ for _ in ()).throw(OSError("disk full")),
        )
        handle.add_convergence({"index": 0, "hypervolume": 0.5})
        monkeypatch.setattr(ledger.RunHandle, "_write", real_write)
        handle.finish()
        record = json.loads(handle.path.read_text())
        assert record["convergence"] == [{"index": 0, "hypervolume": 0.5}]

    def test_id_collisions_get_suffix(self, runs):
        a = begin(runs)
        b = begin(runs)
        c = begin(runs)
        assert len({a.record["id"], b.record["id"], c.record["id"]}) == 3

    def test_set_attaches_fields(self, runs):
        handle = begin(runs)
        handle.set(note="late manifest data")
        handle.finish()
        assert json.loads(handle.path.read_text())["note"] == "late manifest data"


class TestEnvKnobs:
    def test_runs_dir_resolution_order(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ledger.RUNS_DIR_ENV, raising=False)
        assert ledger.runs_dir() == ledger.DEFAULT_RUNS_DIR
        monkeypatch.setenv(ledger.RUNS_DIR_ENV, str(tmp_path / "env"))
        assert ledger.runs_dir() == tmp_path / "env"
        assert ledger.runs_dir(tmp_path / "arg") == tmp_path / "arg"

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", " OFF "])
    def test_ledger_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(ledger.LEDGER_ENV, value)
        assert not ledger.ledger_enabled()

    @pytest.mark.parametrize("value", [None, "", "1", "on", "yes"])
    def test_ledger_enabled_by_default(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv(ledger.LEDGER_ENV, raising=False)
        else:
            monkeypatch.setenv(ledger.LEDGER_ENV, value)
        assert ledger.ledger_enabled()


class TestReadBack:
    def test_list_runs_sorted_oldest_first(self, runs):
        for i in range(3):
            handle = begin(runs)
            handle.record["started"] = 1000.0 + i  # deterministic order
            handle.finish()
        records = ledger.list_runs(runs)
        assert [r["started"] for r in records] == [1000.0, 1001.0, 1002.0]
        assert all("_path" in r for r in records)

    def test_list_runs_empty_dir(self, tmp_path):
        assert ledger.list_runs(tmp_path / "nowhere") == []

    def test_unreadable_file_surfaces_as_stub(self, runs):
        begin(runs).finish()
        (runs / "junk.json").write_text("{not json")
        records = ledger.list_runs(runs)
        stubs = [r for r in records if r["status"] == "unreadable"]
        assert [r["id"] for r in stubs] == ["junk"]

    def test_load_run_latest_exact_prefix_and_path(self, runs):
        a = begin(runs)
        a.finish()
        b = begin(runs)
        b.record["started"] = a.record["started"] + 10
        b.finish()
        assert ledger.load_run("latest", runs)["id"] == b.record["id"]
        assert ledger.load_run(a.record["id"], runs)["id"] == a.record["id"]
        assert ledger.load_run(str(a.path), runs)["id"] == a.record["id"]

    def test_load_run_errors_are_clear(self, runs):
        with pytest.raises(ValueError, match="no runs recorded"):
            ledger.load_run("latest", runs)
        begin(runs).finish()
        begin(runs).finish()
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.load_run("2", runs)  # ids start with the year
        with pytest.raises(ValueError, match="no run matching"):
            ledger.load_run("zzz", runs)

    def test_gc_keeps_newest(self, runs):
        handles = []
        for i in range(5):
            handle = begin(runs)
            handle.record["started"] = 1000.0 + i
            handle.finish()
            handles.append(handle)
        would = ledger.gc_runs(runs, keep=2, dry_run=True)
        assert len(would) == 3
        assert len(ledger.list_runs(runs)) == 5  # dry run removed nothing
        removed = ledger.gc_runs(runs, keep=2)
        assert removed == would
        left = [r["id"] for r in ledger.list_runs(runs)]
        assert left == [h.record["id"] for h in handles[-2:]]

    def test_gc_rejects_negative_keep(self, runs):
        with pytest.raises(ValueError, match=">= 0"):
            ledger.gc_runs(runs, keep=-1)


class TestDerivedMetrics:
    def _record_with_metrics(self):
        reg_dump = {
            "metrics": [
                {
                    "name": "loma_orderings_evaluated_total",
                    "kind": "counter",
                    "labels": [],
                    "data": 300,
                },
                {
                    "name": "mapping_cache_gets_total",
                    "kind": "counter",
                    "labels": [["result", "hit"]],
                    "data": 30,
                },
                {
                    "name": "mapping_cache_gets_total",
                    "kind": "counter",
                    "labels": [["result", "miss"]],
                    "data": 10,
                },
                {
                    "name": "service_exec_seconds",
                    "kind": "histogram",
                    "labels": [],
                    "data": {"buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1},
                },
            ]
        }
        return {"wall_seconds": 2.0, "metrics": reg_dump}

    def test_metric_total_sums_matching_series(self):
        record = self._record_with_metrics()
        assert ledger.metric_total(record, "mapping_cache_gets_total") == 40
        assert (
            ledger.metric_total(
                record, "mapping_cache_gets_total", result="hit"
            )
            == 30
        )
        assert ledger.metric_total(record, "absent") is None
        # Histograms have no scalar total.
        assert ledger.metric_total(record, "service_exec_seconds") is None

    def test_key_metrics_derivation(self):
        out = ledger.key_metrics(self._record_with_metrics())
        assert out["orderings"] == 300
        assert out["orderings_per_s"] == pytest.approx(150.0)
        assert out["cache_hit_rate"] == pytest.approx(0.75)
        assert out["hypervolume"] is None

    def test_key_metrics_prefers_result_over_convergence(self):
        record = {
            "wall_seconds": 1.0,
            "result": {"hypervolume": 0.9, "evaluations": 50},
            "convergence": [
                {"hypervolume": 0.4, "evaluations": 20, "epsilon": 0.3}
            ],
        }
        out = ledger.key_metrics(record)
        assert out["hypervolume"] == 0.9
        assert out["evaluations"] == 50
        assert out["epsilon"] == 0.3  # falls back to the last point

    def test_key_metrics_empty_record(self):
        out = ledger.key_metrics({})
        assert all(v is None for v in out.values())
