"""Telemetry wired through the stack: fork-merged worker registries,
tracing-on bit-identity, checkpoint stamps, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.strategy import OverlapMode
from repro.dse import DesignSpace, DSERunner
from repro.explore import Executor
from repro.mapping import SearchConfig
from repro.obs import parse_prometheus, trace_coverage, trace_spans

SPACE = dict(
    accelerators=("meta_proto_like_df",),
    tile_x=(4, 16),
    tile_y=(4,),
    modes=(OverlapMode.FULLY_CACHED,),
)
CONFIG = SearchConfig(lpf_limit=5, budget=60)


def run_dse(backend=None, jobs=1, checkpoint=None):
    with Executor(
        jobs=jobs, search_config=CONFIG, backend=backend
    ) as executor:
        runner = DSERunner(
            DesignSpace(**SPACE),
            "fsrcnn",
            executor=executor,
            checkpoint=checkpoint,
            seed=0,
        )
        return runner.run("exhaustive")


def frontier_key(result):
    return [
        (entry.point.key(), entry.values)
        for entry in result.frontier.entries
    ]


class TestForkMerge:
    def test_process_workers_fold_into_parent_registry(self):
        """The fork-merge satellite: worker shards run with clean
        registries and their LOMA counters land in the parent."""
        obs.enable()  # metrics-only
        run_dse(backend="process", jobs=2)
        registry = obs.metrics()
        # The searches happened in worker processes, yet the parent
        # registry sees them via the harvest/absorb round trip.
        assert registry.value("loma_searches_total") > 0
        assert registry.value("loma_orderings_evaluated_total") > 0
        hit = registry.value("mapping_cache_gets_total", result="hit")
        miss = registry.value("mapping_cache_gets_total", result="miss")
        assert hit + miss > 0
        assert registry.value("executor_jobs_total", backend="process") == 2
        assert registry.value("dse_generations_total") == 1

    def test_disabled_parent_ships_nothing(self):
        run_dse(backend="process", jobs=2)
        assert len(obs.metrics()) == 0


class TestIdentity:
    def test_tracing_on_service_matches_telemetry_off_serial(self, tmp_path):
        """The acceptance contract: serial with telemetry off and the
        service backend with tracing on produce bit-identical frontiers."""
        baseline = run_dse()
        assert not obs.enabled

        obs.enable(trace=tmp_path / "t.jsonl")
        traced = run_dse(backend="service", jobs=2)
        obs.disable()

        assert frontier_key(traced) == frontier_key(baseline)
        assert traced.evaluated.keys() == baseline.evaluated.keys()
        for key, (_, values, violation) in baseline.evaluated.items():
            assert traced.evaluated[key][1] == values
            assert traced.evaluated[key][2] == violation

        spans = trace_spans(str(tmp_path / "t.jsonl"))
        names = {s["name"] for s in spans}
        assert {"dse.run", "dse.generation", "executor.run"} <= names
        assert trace_coverage(spans) >= 0.95

    def test_metrics_only_serial_identity(self):
        baseline = run_dse()
        obs.enable()
        traced = run_dse()
        obs.disable()
        assert frontier_key(traced) == frontier_key(baseline)


class TestCheckpointTelemetry:
    def test_stamp_present_only_when_enabled(self, tmp_path):
        off = tmp_path / "off.json"
        run_dse(checkpoint=off)
        assert "telemetry" not in json.loads(off.read_text())

        obs.enable()
        on = tmp_path / "on.json"
        run_dse(checkpoint=on)
        obs.disable()
        stamp = json.loads(on.read_text())["telemetry"]
        assert stamp["generations"] == 1
        assert stamp["orderings_evaluated"] > 0

    def test_resume_across_telemetry_modes(self, tmp_path):
        """The telemetry key lives outside the stamp fields: a
        telemetry-on checkpoint resumes cleanly with telemetry off."""
        checkpoint = tmp_path / "ck.json"
        obs.enable()
        first = run_dse(checkpoint=checkpoint)
        obs.reset()
        resumed = run_dse(checkpoint=checkpoint)
        assert resumed.evaluations == 0  # everything served from memo
        assert resumed.total_evaluations == first.total_evaluations
        assert frontier_key(resumed) == frontier_key(first)


class TestCLI:
    DSE_ARGS = [
        "dse",
        "--workload", "fsrcnn",
        "--strategy", "exhaustive",
        "--tilex", "4,16",
        "--tiley", "4",
        "--modes", "fully_cached",
        "--budget", "60",
        "--lpf-limit", "5",
    ]

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        prom = tmp_path / "run.prom"
        code = main(
            self.DSE_ARGS
            + ["--trace", str(trace), "--metrics", str(prom)]
        )
        assert code == 0
        assert not obs.enabled  # the CLI resets the layer on exit
        out = capsys.readouterr().out
        assert f"wrote {prom}" in out
        assert f"wrote {trace}" in out

        spans = trace_spans(str(trace))
        assert any(s["name"] == "repro.dse" for s in spans)
        assert trace_coverage(spans) >= 0.95

        values = parse_prometheus(prom.read_text())
        assert values["loma_orderings_evaluated_total"] > 0
        assert values["dse_evaluations"] == 2

    def test_metrics_json_dump(self, tmp_path):
        dump = tmp_path / "run.json"
        assert main(self.DSE_ARGS + ["--metrics", str(dump)]) == 0
        data = json.loads(dump.read_text())
        assert any(
            m["name"] == "loma_searches_total" for m in data["metrics"]
        )

    def test_bad_sample_fraction_rejected(self):
        with pytest.raises(SystemExit):
            main(self.DSE_ARGS + ["--trace", "t.jsonl", "--trace-sample", "0"])

    def test_stats_subcommand_renders_all_formats(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        prom = tmp_path / "run.prom"
        dump = tmp_path / "run.json"
        main(
            self.DSE_ARGS
            + ["--trace", str(trace), "--metrics", str(prom)]
        )
        main(self.DSE_ARGS + ["--metrics", str(dump)])
        capsys.readouterr()

        assert main(["stats", str(trace), str(prom), str(dump)]) == 0
        out = capsys.readouterr().out
        assert "root spans cover" in out
        assert "mapping cache:" in out
        assert "hit rate" in out
        assert "dse.run" in out
        assert f"== {trace} ==" in out  # multi-file headers

    def test_stats_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.bin"
        junk.write_text("!!! not telemetry !!!\n")
        with pytest.raises(SystemExit, match="not a recognizable"):
            main(["stats", str(junk)])

    def test_classic_evaluate_traces_too(self, tmp_path, capsys):
        trace = tmp_path / "eval.jsonl"
        code = main(
            [
                "--accelerator", "meta_proto_like_df",
                "--workload", "fsrcnn",
                "--tilex", "16",
                "--tiley", "8",
                "--budget", "60",
                "--lpf-limit", "5",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        spans = trace_spans(str(trace))
        assert any(s["name"] == "repro.evaluate" for s in spans)
        assert trace_coverage(spans) >= 0.95
