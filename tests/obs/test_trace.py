"""Tracer: span nesting, JSON-lines round trip, sampling, pid guard."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    load_trace,
    span_summary,
    trace_coverage,
    trace_spans,
)


class TestRoundTrip:
    def test_nesting_round_trips_through_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("outer", phase="a"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        tracer.close()

        records = load_trace(path)
        assert records[0]["type"] == "run"
        assert records[0]["pid"] == tracer.pid
        spans = trace_spans(records)
        assert [s["name"] for s in spans] == ["outer", "inner", "inner"]
        outer = spans[0]
        assert outer["parent"] is None
        assert outer["attrs"] == {"phase": "a"}
        for inner in spans[1:]:
            assert inner["parent"] == outer["id"]
            assert outer["start"] <= inner["start"]
            assert inner["end"] <= outer["end"]
            assert inner["dur"] >= 0.0

    def test_set_attaches_attrs_after_open(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.span("work") as sp:
            sp.set(results=7)
        tracer.close()
        (span,) = trace_spans(load_trace(tmp_path / "t.jsonl"))
        assert span["attrs"] == {"results": 7}

    def test_exception_recorded_as_error_attr(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        tracer.close()
        (span,) = trace_spans(load_trace(tmp_path / "t.jsonl"))
        assert span["attrs"]["error"] == "RuntimeError"

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "run"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(path)
        path.write_text('["a", "list"]\n')
        with pytest.raises(ValueError, match="objects with a 'type'"):
            load_trace(path)


class TestSampling:
    def test_counter_rule_keeps_exact_fraction(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", sample=0.5)
        for _ in range(10):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        tracer.close()
        spans = trace_spans(load_trace(tmp_path / "t.jsonl"))
        # 5 of 10 roots kept, each with its child: children follow the
        # root's decision, so no orphan children appear.
        assert sum(1 for s in spans if s["name"] == "root") == 5
        assert sum(1 for s in spans if s["name"] == "child") == 5
        assert tracer.spans_written == 10
        assert tracer.spans_dropped == 10
        root_ids = {s["id"] for s in spans if s["name"] == "root"}
        assert all(
            s["parent"] in root_ids for s in spans if s["name"] == "child"
        )

    def test_sample_validated(self, tmp_path):
        with pytest.raises(ValueError, match="sample"):
            Tracer(tmp_path / "t.jsonl", sample=0.0)
        with pytest.raises(ValueError, match="sample"):
            Tracer(tmp_path / "t.jsonl", sample=1.5)

    def test_fully_dropped_trace_writes_no_file(self, tmp_path):
        # Writing is lazy: a trace whose roots were all sampled out (or
        # that never opened a span) leaves no file behind.
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path, sample=0.25)
        with tracer.span("root"):  # root 0: int(0) == int(0.25) -> drop
            pass
        tracer.close()
        assert not path.exists()
        assert tracer.spans_dropped == 1


class TestDisabledPaths:
    def test_span_is_shared_noop_when_disabled(self):
        assert obs.span("anything", x=1) is NULL_SPAN
        with obs.span("anything") as sp:
            sp.set(y=2)  # no-op, no error

    def test_metrics_only_mode_has_no_tracer(self):
        obs.enable()  # no trace path
        assert obs.tracer() is None
        assert obs.span("x") is NULL_SPAN
        assert obs.enabled

    def test_forked_pid_guard(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.span("mine"):
            pass
        tracer.pid += 1  # simulate a forked child
        assert not tracer.recording
        assert tracer.span("theirs") is NULL_SPAN
        tracer.close()
        assert [s["name"] for s in trace_spans(load_trace(tmp_path / "t.jsonl"))] == [
            "mine"
        ]

    def test_worker_begin_clears_inherited_state(self, tmp_path):
        obs.enable(trace=tmp_path / "t.jsonl")
        obs.metrics().counter("parent_stuff").inc(5)
        obs.worker_begin(True)
        assert obs.enabled
        assert obs.tracer() is None
        assert obs.metrics().value("parent_stuff") == 0
        obs.metrics().counter("child_stuff").inc()
        dump = obs.harvest()
        assert dump is not None
        obs.worker_begin(False)
        assert not obs.enabled
        assert obs.harvest() is None

    def test_absorb_merges_harvest(self):
        obs.enable()
        obs.metrics().counter("c").inc(2)
        dump = obs.harvest()
        obs.reset()
        obs.enable()
        obs.metrics().counter("c").inc(1)
        obs.absorb(dump)
        obs.absorb(None)  # telemetry-off workers ship nothing
        assert obs.metrics().value("c") == 3


class TestAnalysis:
    def _write(self, tmp_path, spans):
        """spans: (id, parent, name, start, end) rows."""
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "run", "pid": 1}) + "\n")
            for sid, parent, name, start, end in spans:
                fh.write(
                    json.dumps(
                        {
                            "type": "span",
                            "id": sid,
                            "parent": parent,
                            "name": name,
                            "start": start,
                            "end": end,
                            "dur": end - start,
                        }
                    )
                    + "\n"
                )
        return path

    def test_self_time_subtracts_direct_children(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                (0, None, "outer", 0.0, 10.0),
                (1, 0, "inner", 1.0, 5.0),
                (2, 0, "inner", 5.0, 8.0),
            ],
        )
        rows = {r["name"]: r for r in span_summary(path)}
        assert rows["outer"]["total"] == 10.0
        assert rows["outer"]["self"] == pytest.approx(3.0)
        assert rows["inner"]["count"] == 2
        assert rows["inner"]["self"] == pytest.approx(7.0)
        # Sorted by self time descending: inner first.
        assert [r["name"] for r in span_summary(path)] == ["inner", "outer"]

    def test_coverage_is_root_interval_union(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                (0, None, "a", 0.0, 4.0),
                (1, None, "b", 6.0, 10.0),
                (2, 0, "child", 1.0, 3.0),
            ],
        )
        assert trace_coverage(path) == pytest.approx(0.8)

    def test_coverage_none_without_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"type": "run", "pid": 1}) + "\n")
        assert trace_coverage(load_trace(path)) is None
