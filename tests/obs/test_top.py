"""`repro top` rendering: samples, rate math, shard rows (no sockets —
the wire integration lives in tests/serve/test_http_metrics.py)."""

from __future__ import annotations

from repro.obs import top
from repro.obs.metrics import MetricsRegistry


class FakeClient:
    """The CacheClient control surface `sample_server` needs."""

    def __init__(self, stats, exposition):
        self.stats = stats
        self.exposition = exposition

    def server_stats(self):
        return dict(self.stats)

    def server_metrics(self):
        return {"text": self.exposition}


def make_sample(
    t=0.0,
    hits=30,
    misses=10,
    requests=None,
    shards=None,
):
    """Build a sample like `sample_server` would, at a pinned time."""
    reg = MetricsRegistry()
    for shard, (jobs, busy) in (shards or {}).items():
        reg.counter("service_jobs_total", shard=shard).inc(jobs)
        hist = reg.histogram("service_exec_seconds", shard=shard)
        hist.total = busy
        hist.count = jobs
    stats = {
        "size": 100,
        "hits": hits,
        "misses": misses,
        "connections": 2,
        "connections_total": 5,
        "in_flight": 1,
        "queue_depth": 3,
        "unauthorized": 0,
        "requests": requests or {"get": hits + misses, "put": 7},
    }
    client = FakeClient(stats, reg.render_prometheus())
    sample = top.sample_server(client)
    sample["time"] = t  # pin for deterministic rate math
    return sample


class TestSampleServer:
    def test_sample_shape(self):
        sample = make_sample(shards={"0": (10, 0.5)})
        assert sample["stats"]["hits"] == 30
        assert 'service_jobs_total{shard="0"}' in sample["values"]

    def test_sample_parses_exposition_values(self):
        sample = make_sample(shards={"0": (12, 0.5)})
        assert sample["values"]['service_jobs_total{shard="0"}'] == 12.0


class TestTopReport:
    def test_first_frame_has_counters_no_rates(self):
        frame = top.top_report("host:9)", make_sample())
        assert "entries 100" in frame
        assert "hits 30" in frame
        assert "hit rate 75.0%" in frame
        assert "queued 3" in frame
        assert "first sample" in frame
        assert "evals/s" not in frame

    def test_second_frame_computes_rates(self):
        prev = make_sample(t=0.0, hits=30, misses=10)
        curr = make_sample(t=2.0, hits=70, misses=10)
        # get requests went 40 -> 80 over 2s: 20 gets/s.
        frame = top.top_report("host:9", curr, prev)
        assert "gets/s 20.0" in frame
        # puts unchanged: evals/s proxy is 0 without shard counters.
        assert "evals/s 0.0" in frame

    def test_shard_table_and_busy_fraction(self):
        prev = make_sample(t=0.0, shards={"0": (10, 1.0), "1": (20, 2.0)})
        curr = make_sample(t=2.0, shards={"0": (20, 2.0), "1": (24, 3.0)})
        frame = top.top_report("host:9", curr, prev)
        assert "shard" in frame
        # Shard 0: +10 jobs / 2s = 5 jobs/s, +1.0s busy / 2s = 50%.
        assert "5.0" in frame and "50%" in frame
        # evals/s comes from the shard job rates: 5 + 2 = 7/s.
        assert "evals/s 7.0" in frame

    def test_zero_lookups_renders_dash(self):
        frame = top.top_report("host:9", make_sample(hits=0, misses=0))
        assert "hit rate -" in frame

    def test_no_shards_no_table(self):
        frame = top.top_report("host:9", make_sample())
        assert "shard " not in frame

    def test_rate_guards(self):
        assert top._rate(10.0, None, 1.0) is None
        assert top._rate(10.0, 5.0, 0.0) is None
        assert top._rate(10.0, 5.0, 2.0) == 2.5

    def test_fmt(self):
        assert top._fmt(None) == "-"
        assert top._fmt(3) == "3"
        assert top._fmt(2.5) == "2.5"
        assert top._fmt(2048.0) == "2048"
        assert top._fmt(1.0, "s") == "1.0s"
