"""MetricsRegistry: counters, gauges, mergeable histograms, exposition."""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    BucketMismatchError,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    load_metrics,
    parse_prometheus,
    split_series,
    unescape_label_value,
)


class TestBasics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("evals").inc()
        reg.counter("evals").inc(41)
        assert reg.value("evals") == 42

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").add(2.5)
        assert reg.value("depth") == 5.5

    def test_labels_are_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("gets", result="hit").inc(2)
        reg.counter("gets", result="miss").inc(5)
        assert reg.value("gets", result="hit") == 2
        assert reg.value("gets", result="miss") == 5
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        # Even with a different label set: one kind per family name.
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x", shard=1)

    def test_absent_metric_reads_zero(self):
        assert MetricsRegistry().value("never") == 0

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=())

    def test_histogram_observe_places_values(self):
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(55.55)


class TestMerge:
    def _random_registry(
        self, rng: random.Random, gauges: bool = True
    ) -> MetricsRegistry:
        reg = MetricsRegistry()
        for _ in range(rng.randint(0, 8)):
            reg.counter("c", tag=rng.choice("ab")).inc(rng.randint(1, 9))
        for _ in range(rng.randint(0, 8)):
            # Dyadic values add exactly in any order, so the property
            # holds bit-for-bit (bucket counts are ints and always do).
            reg.histogram("h").observe(rng.randint(0, 800) / 4.0)
        if gauges:
            reg.gauge("g").set(rng.random())
        return reg

    def test_merge_associative_and_commutative(self):
        """Property: for counters and histograms, fold order never
        changes the aggregate — worker harvests can land in any order."""
        rng = random.Random(7)
        for _ in range(25):
            dumps = [
                self._random_registry(rng, gauges=False).to_json()
                for _ in range(3)
            ]

            def fold(order):
                acc = MetricsRegistry()
                for i in order:
                    acc.merge_json(dumps[i])
                return acc.render_prometheus()

            baseline = fold([0, 1, 2])
            assert all(
                fold(order) == baseline
                for order in ([2, 1, 0], [1, 0, 2], [0, 2, 1])
            )

    def test_gauge_merge_is_last_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.value("g") == 2.0

    def test_counter_and_bucket_counts_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.value("c") == 7
        assert a.get("h").counts == [1, 1, 0]
        assert a.get("h").count == 2

    def test_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="cannot merge buckets"):
            a.merge(b)

    def test_bucket_mismatch_is_named_error(self):
        """Callers can catch the mismatch specifically — and existing
        ``except ValueError`` handlers keep working."""
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(BucketMismatchError) as excinfo:
            a.merge_json(b.to_json())
        assert isinstance(excinfo.value, ValueError)
        assert "h" in str(excinfo.value)

    def test_merge_into_empty_is_identity(self):
        rng = random.Random(11)
        src = self._random_registry(rng)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.render_prometheus() == src.render_prometheus()


class TestExposition:
    def test_prometheus_render_shape(self):
        reg = MetricsRegistry()
        reg.counter("jobs", backend="serial").inc(3)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.render_prometheus()
        assert "# TYPE jobs counter" in text
        assert 'jobs{backend="serial"} 3' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_histogram_render_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        values = parse_prometheus(reg.render_prometheus())
        assert values['h_bucket{le="1"}'] == 1
        assert values['h_bucket{le="2"}'] == 2
        assert values['h_bucket{le="3"}'] == 3
        assert values['h_bucket{le="+Inf"}'] == 3

    def test_parse_prometheus_skips_comments_and_handles_inf(self):
        values = parse_prometheus(
            "# TYPE x counter\nx 3\nh_bucket{le=\"+Inf\"} 7\n\n"
        )
        assert values == {"x": 3.0, 'h_bucket{le="+Inf"}': 7.0}

    def test_json_file_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.histogram("h").observe(0.2)
        reg.gauge("g", shard=2).set(1.25)
        path = reg.write_json(tmp_path / "m.json")
        loaded = load_metrics(path)
        assert loaded.render_prometheus() == reg.render_prometheus()

    def test_prometheus_file(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = reg.write_prometheus(tmp_path / "m.prom")
        assert parse_prometheus(path.read_text()) == {"c": 1.0}

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0
        assert all(
            b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )
        assert all(math.isfinite(b) for b in DEFAULT_BUCKETS)


class TestLabelEscaping:
    """Prometheus label values must escape ``\\``, ``"`` and newlines —
    an unescaped path like ``C:\\runs`` or a quote in a workload name
    would otherwise corrupt the exposition line."""

    def test_escape_rules(self):
        assert escape_label_value("plain") == "plain"
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_unescape_inverts_escape(self):
        nasty = 'quote " slash \\ newline \n mix \\n"\\'
        assert unescape_label_value(escape_label_value(nasty)) == nasty

    def test_unknown_escape_degrades_to_literal(self):
        assert unescape_label_value("a\\tb") == "atb"
        assert unescape_label_value("trailing\\") == "trailing\\"

    def test_rendered_line_stays_single_line(self):
        reg = MetricsRegistry()
        reg.counter("c", path='multi\nline "x" \\ end').inc()
        text = reg.render_prometheus()
        body = [l for l in text.splitlines() if not l.startswith("#")]
        assert body == ['c{path="multi\\nline \\"x\\" \\\\ end"} 1']

    def test_round_trip_property(self):
        """Property: render → parse_prometheus → split_series recovers
        every label value exactly, for randomized nasty strings."""
        rng = random.Random(20230423)
        alphabet = 'abc"\\\n {}=,'
        for trial in range(50):
            value = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(0, 12))
            )
            reg = MetricsRegistry()
            reg.counter("c", path=value, tag=f"t{trial}").inc(3)
            values = parse_prometheus(reg.render_prometheus())
            assert len(values) == 1
            (series, amount), = values.items()
            name, labels = split_series(series)
            assert name == "c"
            assert labels == {"path": value, "tag": f"t{trial}"}
            assert amount == 3.0

    def test_split_series_plain_name(self):
        assert split_series("up") == ("up", {})

    def test_split_series_rejects_garbage(self):
        with pytest.raises(ValueError):
            split_series("not a series {{{")
