"""Regression gate: threshold semantics, skips, bench-file comparison."""

from __future__ import annotations

import json

import pytest

from repro.obs import regress


def run_record(
    wall=2.0, orderings=200, hits=30, misses=10, hv=0.9, evals=50
):
    """A ledger-record-shaped dict with the gated metrics."""
    metrics = []
    if orderings is not None:
        metrics.append(
            {
                "name": "loma_orderings_evaluated_total",
                "kind": "counter",
                "labels": [],
                "data": orderings,
            }
        )
    if hits is not None:
        metrics.append(
            {
                "name": "mapping_cache_gets_total",
                "kind": "counter",
                "labels": [["result", "hit"]],
                "data": hits,
            }
        )
        metrics.append(
            {
                "name": "mapping_cache_gets_total",
                "kind": "counter",
                "labels": [["result", "miss"]],
                "data": misses,
            }
        )
    record = {"wall_seconds": wall, "metrics": {"metrics": metrics}}
    if hv is not None:
        record["result"] = {"hypervolume": hv, "evaluations": evals}
    return record


def by_metric(checks):
    return {c.metric: c for c in checks}


class TestCompareRuns:
    def test_identical_runs_pass(self):
        checks = regress.compare_runs(run_record(), run_record())
        assert not regress.has_regressions(checks)
        assert {c.status for c in checks} == {regress.OK}

    def test_throughput_regression_detected(self):
        # 200/2s = 100/s baseline; 40/2s = 20/s current: an 80% slowdown
        # breaks the default 50% tolerance.
        checks = regress.compare_runs(run_record(), run_record(orderings=40))
        check = by_metric(checks)["orderings_per_s"]
        assert check.regressed
        assert check.baseline == pytest.approx(100.0)
        assert check.current == pytest.approx(20.0)

    def test_throughput_within_tolerance_passes(self):
        checks = regress.compare_runs(run_record(), run_record(orderings=120))
        assert not by_metric(checks)["orderings_per_s"].regressed

    def test_slowdown_threshold_is_tunable(self):
        base, curr = run_record(), run_record(orderings=180)  # -10%
        assert not regress.has_regressions(regress.compare_runs(base, curr))
        tight = regress.compare_runs(base, curr, max_slowdown=0.05)
        assert by_metric(tight)["orderings_per_s"].regressed

    def test_hit_rate_drop_is_absolute(self):
        base = run_record(hits=30, misses=10)  # 0.75
        ok = run_record(hits=284, misses=116)  # 0.71: within 0.05
        bad = run_record(hits=26, misses=14)  # 0.65: 0.10 drop
        assert not by_metric(regress.compare_runs(base, ok))[
            "cache_hit_rate"
        ].regressed
        assert by_metric(regress.compare_runs(base, bad))[
            "cache_hit_rate"
        ].regressed

    def test_hypervolume_loss_detected(self):
        checks = regress.compare_runs(run_record(hv=0.9), run_record(hv=0.85))
        assert by_metric(checks)["hypervolume"].regressed

    def test_hypervolume_skipped_when_budgets_differ(self):
        checks = regress.compare_runs(
            run_record(hv=0.9, evals=50), run_record(hv=0.5, evals=80)
        )
        check = by_metric(checks)["hypervolume"]
        assert check.status == regress.SKIPPED
        assert "budgets differ" in check.note
        assert not regress.has_regressions(checks)

    def test_missing_metrics_skip_not_fail(self):
        """A telemetry-off baseline still gates hypervolume."""
        bare = {"wall_seconds": 1.0, "result": {"hypervolume": 0.9, "evaluations": 5}}
        checks = regress.compare_runs(bare, bare)
        verdicts = by_metric(checks)
        assert verdicts["orderings_per_s"].status == regress.SKIPPED
        assert verdicts["cache_hit_rate"].status == regress.SKIPPED
        assert verdicts["hypervolume"].status == regress.OK
        assert not regress.has_regressions(checks)

    def test_skip_notes_name_the_missing_side(self):
        checks = regress.compare_runs({"wall_seconds": 1.0}, run_record())
        assert "baseline" in by_metric(checks)["orderings_per_s"].note


class TestCompareBench:
    def _bench(self, per_s=100.0, speedup=8.0, extra_point=True):
        points = [
            {
                "workload": "fsrcnn",
                "accelerator": "meta_proto_like_df",
                "batch": {"orderings_per_s": per_s},
                "speedup": speedup,
            }
        ]
        if extra_point:
            points.append(
                {
                    "workload": "mccnn",
                    "accelerator": "edge_tpu_like",
                    "batch": {"orderings_per_s": 50.0},
                    "speedup": 4.0,
                }
            )
        return {"points": points}

    def test_matching_bench_passes(self):
        checks = regress.compare_bench(self._bench(), self._bench())
        assert not regress.has_regressions(checks)
        assert len(checks) == 4  # 2 points x (orderings/s, speedup)

    def test_point_slowdown_detected(self):
        checks = regress.compare_bench(self._bench(), self._bench(per_s=10.0))
        bad = [c for c in checks if c.regressed]
        assert [c.metric for c in bad] == [
            "bench[fsrcnn/meta_proto_like_df].batch_orderings_per_s"
        ]

    def test_missing_point_is_a_regression(self):
        checks = regress.compare_bench(
            self._bench(), self._bench(extra_point=False)
        )
        missing = [c for c in checks if "point present" in c.limit]
        assert len(missing) == 1
        assert missing[0].regressed
        assert "missing" in missing[0].note

    def test_load_bench_validates_shape(self, tmp_path):
        good = tmp_path / "bench.json"
        good.write_text(json.dumps(self._bench()))
        assert regress.load_bench(good)["points"]
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a bench file"):
            regress.load_bench(bad)


class TestCheck:
    def test_regressed_property(self):
        ok = regress.Check("m", 1.0, 1.0, "x", regress.OK)
        bad = regress.Check("m", 1.0, 0.1, "x", regress.REGRESSED)
        skip = regress.Check("m", None, None, "x", regress.SKIPPED)
        assert not ok.regressed
        assert bad.regressed
        assert not skip.regressed
        assert regress.has_regressions([ok, bad, skip])
        assert not regress.has_regressions([ok, skip])

    def test_zero_tolerance_is_exact_floor(self):
        checks = regress.compare_runs(
            run_record(hv=0.9), run_record(hv=0.9), max_hv_loss=0.0
        )
        assert by_metric(checks)["hypervolume"].status == regress.OK
        checks = regress.compare_runs(
            run_record(hv=0.9), run_record(hv=0.8999), max_hv_loss=0.0
        )
        assert by_metric(checks)["hypervolume"].regressed
